#include "nautilus/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nautilus/tensor/qgemm.h"
#include "nautilus/util/parallel.h"

namespace nautilus {
namespace ops {
namespace {

// Views a tensor as a [rows, cols] matrix where cols is the last dimension.
struct MatView {
  int64_t rows;
  int64_t cols;
};

MatView As2D(const Tensor& t) {
  NAUTILUS_CHECK_GE(t.shape().rank(), 1);
  const int64_t cols = t.shape().dim(t.shape().rank() - 1);
  return {t.NumElements() / cols, cols};
}

// Fixed-size chunking for parallel reductions. The chunk count depends only
// on the problem size — never on the thread count — and the partial results
// merge serially in ascending chunk order, so reduced sums are bitwise
// identical at any parallelism degree (though grouped differently than a
// single sequential accumulation).
constexpr int64_t kReduceChunkRows = 256;

int64_t ReduceChunks(int64_t rows) {
  return (rows + kReduceChunkRows - 1) / kReduceChunkRows;
}

}  // namespace

// The matmul family lowers onto the blocked/packed Gemm in gemm.cc. The old
// scalar loops carried `if (aik == 0.0f) continue;` fast paths that silently
// broke IEEE propagation (0 * Inf must be NaN, not skipped); the blocked
// kernels are branch-free, so that bug is gone along with the branch.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const MatView av = As2D(a);
  const MatView bv = As2D(b);
  NAUTILUS_CHECK_EQ(av.cols, bv.rows)
      << a.shape().ToString() << " x " << b.shape().ToString();
  Tensor c = Tensor::Uninitialized(Shape({av.rows, bv.cols}));
  Gemm(GemmTranspose::kNN, av.rows, bv.cols, av.cols, a.data(), b.data(),
       c.data());
  return c;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  const MatView av = As2D(a);
  const MatView bv = As2D(b);
  NAUTILUS_CHECK_EQ(av.cols, bv.cols)
      << a.shape().ToString() << " x " << b.shape().ToString() << "^T";
  Tensor c = Tensor::Uninitialized(Shape({av.rows, bv.rows}));
  Gemm(GemmTranspose::kNT, av.rows, bv.rows, av.cols, a.data(), b.data(),
       c.data());
  return c;
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  const MatView av = As2D(a);
  const MatView bv = As2D(b);
  NAUTILUS_CHECK_EQ(av.rows, bv.rows)
      << a.shape().ToString() << "^T x " << b.shape().ToString();
  Tensor c = Tensor::Uninitialized(Shape({av.cols, bv.cols}));
  Gemm(GemmTranspose::kTN, av.cols, bv.cols, av.rows, a.data(), b.data(),
       c.data());
  return c;
}

Tensor DenseForward(const Tensor& x, const Tensor& w, const Tensor& bias,
                    EpilogueKind epilogue, Tensor* pre_activation) {
  const MatView xv = As2D(x);
  const MatView wv = As2D(w);
  NAUTILUS_CHECK_EQ(xv.cols, wv.rows)
      << x.shape().ToString() << " x " << w.shape().ToString();
  NAUTILUS_CHECK_EQ(bias.NumElements(), wv.cols);
  Tensor y = Tensor::Uninitialized(Shape({xv.rows, wv.cols}));
  Epilogue ep;
  ep.kind = epilogue == EpilogueKind::kNone ? EpilogueKind::kBias : epilogue;
  ep.bias = bias.data();
  if (pre_activation != nullptr) {
    *pre_activation = Tensor::Uninitialized(Shape({xv.rows, wv.cols}));
    ep.pre_activation = pre_activation->data();
  }
  Gemm(GemmTranspose::kNN, xv.rows, wv.cols, xv.cols, x.data(), w.data(),
       y.data(), ep);
  return y;
}

Tensor QuantizedDenseForward(const Tensor& x, const quant::QuantizedMatrix& w,
                             const Tensor& bias, EpilogueKind epilogue,
                             Tensor* pre_activation) {
  const MatView xv = As2D(x);
  NAUTILUS_CHECK_EQ(xv.cols, w.rows)
      << x.shape().ToString() << " x int8[" << w.rows << "," << w.cols << "]";
  NAUTILUS_CHECK_EQ(bias.NumElements(), w.cols);
  const float* px = x.data();
  std::vector<int8_t> xq(static_cast<size_t>(xv.rows * xv.cols));
  std::vector<float> xscales(static_cast<size_t>(xv.rows));
  ParallelFor(
      xv.rows,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          xscales[static_cast<size_t>(i)] = quant::QuantizeRowAbsMax(
              px + i * xv.cols, xv.cols, xq.data() + i * xv.cols);
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(xv.cols, 1)));
  Tensor y = Tensor::Uninitialized(Shape({xv.rows, w.cols}));
  Epilogue ep;
  ep.kind = epilogue == EpilogueKind::kNone ? EpilogueKind::kBias : epilogue;
  ep.bias = bias.data();
  if (pre_activation != nullptr) {
    *pre_activation = Tensor::Uninitialized(Shape({xv.rows, w.cols}));
    ep.pre_activation = pre_activation->data();
  }
  QGemmInt8(xv.rows, w.cols, xv.cols, xq.data(), xscales.data(), w.q.data(),
            w.scales.data(), y.data(), ep);
  return y;
}

Tensor RoundTripF16(const Tensor& x) {
  Tensor y = Tensor::Uninitialized(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const int64_t n = x.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          py[i] = quant::F16ToF32(quant::F32ToF16(px[i]));
        }
      },
      /*min_chunk=*/4096);
  return y;
}

void AddBiasInPlace(Tensor* x, const Tensor& bias) {
  const MatView xv = As2D(*x);
  NAUTILUS_CHECK_EQ(bias.NumElements(), xv.cols);
  float* px = x->data();
  const float* pb = bias.data();
  ParallelFor(
      xv.rows,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* row = px + i * xv.cols;
          for (int64_t j = 0; j < xv.cols; ++j) row[j] += pb[j];
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(xv.cols, 1)));
}

Tensor ColumnSum(const Tensor& g) {
  const MatView gv = As2D(g);
  Tensor out(Shape({gv.cols}));
  const float* pg = g.data();
  float* po = out.data();
  const int64_t chunks = ReduceChunks(gv.rows);
  if (chunks <= 1) {
    for (int64_t i = 0; i < gv.rows; ++i) {
      const float* row = pg + i * gv.cols;
      for (int64_t j = 0; j < gv.cols; ++j) po[j] += row[j];
    }
    return out;
  }
  std::vector<float> partial(static_cast<size_t>(chunks * gv.cols), 0.0f);
  ParallelFor(chunks, [&](int64_t cb, int64_t ce) {
    for (int64_t ch = cb; ch < ce; ++ch) {
      float* acc = partial.data() + ch * gv.cols;
      const int64_t r0 = ch * kReduceChunkRows;
      const int64_t r1 = std::min(gv.rows, r0 + kReduceChunkRows);
      for (int64_t i = r0; i < r1; ++i) {
        const float* row = pg + i * gv.cols;
        for (int64_t j = 0; j < gv.cols; ++j) acc[j] += row[j];
      }
    }
  });
  for (int64_t ch = 0; ch < chunks; ++ch) {
    const float* acc = partial.data() + ch * gv.cols;
    for (int64_t j = 0; j < gv.cols; ++j) po[j] += acc[j];
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  NAUTILUS_CHECK_EQ(a.NumElements(), b.NumElements());
  Tensor out = a.PooledCopy();
  AxpyInPlace(1.0f, b, &out);
  return out;
}

Tensor AddN(const std::vector<const Tensor*>& xs) {
  NAUTILUS_CHECK(!xs.empty());
  Tensor out = xs[0]->PooledCopy();
  for (size_t i = 1; i < xs.size(); ++i) AxpyInPlace(1.0f, *xs[i], &out);
  return out;
}

void AxpyInPlace(float alpha, const Tensor& x, Tensor* y) {
  NAUTILUS_CHECK_EQ(x.NumElements(), y->NumElements());
  const float* px = x.data();
  float* py = y->data();
  const int64_t n = x.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) py[i] += alpha * px[i];
      },
      /*min_chunk=*/16384);
}

void ScaleInPlace(float alpha, Tensor* x) {
  float* px = x->data();
  const int64_t n = x->NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) px[i] *= alpha;
      },
      /*min_chunk=*/16384);
}

Tensor ReluForward(const Tensor& x) {
  Tensor y = x.PooledCopy();
  float* p = y.data();
  const int64_t n = y.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
      },
      /*min_chunk=*/16384);
  return y;
}

Tensor ReluBackward(const Tensor& dy, const Tensor& y) {
  NAUTILUS_CHECK_EQ(dy.NumElements(), y.NumElements());
  Tensor dx = dy.PooledCopy();
  float* pdx = dx.data();
  const float* py = y.data();
  const int64_t n = dx.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          if (py[i] <= 0.0f) pdx[i] = 0.0f;
        }
      },
      /*min_chunk=*/16384);
  return dx;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor GeluForward(const Tensor& x) {
  Tensor y = x.PooledCopy();
  float* p = y.data();
  const int64_t n = y.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float v = p[i];
          const float t = std::tanh(kGeluC * (v + kGeluA * v * v * v));
          p[i] = 0.5f * v * (1.0f + t);
        }
      },
      /*min_chunk=*/4096);
  return y;
}

Tensor GeluBackward(const Tensor& dy, const Tensor& x) {
  NAUTILUS_CHECK_EQ(dy.NumElements(), x.NumElements());
  Tensor dx = dy.PooledCopy();
  float* pdx = dx.data();
  const float* px = x.data();
  const int64_t n = dx.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float v = px[i];
          const float u = kGeluC * (v + kGeluA * v * v * v);
          const float t = std::tanh(u);
          const float dudv = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
          const float dgelu =
              0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dudv;
          pdx[i] *= dgelu;
        }
      },
      /*min_chunk=*/4096);
  return dx;
}

Tensor TanhForward(const Tensor& x) {
  Tensor y = x.PooledCopy();
  float* p = y.data();
  const int64_t n = y.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) p[i] = std::tanh(p[i]);
      },
      /*min_chunk=*/4096);
  return y;
}

Tensor TanhBackward(const Tensor& dy, const Tensor& y) {
  NAUTILUS_CHECK_EQ(dy.NumElements(), y.NumElements());
  Tensor dx = dy.PooledCopy();
  float* pdx = dx.data();
  const float* py = y.data();
  const int64_t n = dx.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) pdx[i] *= (1.0f - py[i] * py[i]);
      },
      /*min_chunk=*/16384);
  return dx;
}

Tensor LayerNormForward(const Tensor& x, const Tensor& gamma,
                        const Tensor& beta, float eps, LayerNormCache* cache) {
  const MatView xv = As2D(x);
  NAUTILUS_CHECK_EQ(gamma.NumElements(), xv.cols);
  NAUTILUS_CHECK_EQ(beta.NumElements(), xv.cols);
  Tensor y = Tensor::Uninitialized(x.shape());
  cache->normalized = Tensor::Uninitialized(x.shape());
  cache->rstd.assign(static_cast<size_t>(xv.rows), 0.0f);
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* py = y.data();
  float* pn = cache->normalized.data();
  float* prstd = cache->rstd.data();
  // Row-parallel: every row's statistics and outputs are independent.
  ParallelFor(
      xv.rows,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const float* row = px + i * xv.cols;
          float mean = 0.0f;
          for (int64_t j = 0; j < xv.cols; ++j) mean += row[j];
          mean /= static_cast<float>(xv.cols);
          float var = 0.0f;
          for (int64_t j = 0; j < xv.cols; ++j) {
            const float d = row[j] - mean;
            var += d * d;
          }
          var /= static_cast<float>(xv.cols);
          const float rstd = 1.0f / std::sqrt(var + eps);
          prstd[i] = rstd;
          float* nrow = pn + i * xv.cols;
          float* yrow = py + i * xv.cols;
          for (int64_t j = 0; j < xv.cols; ++j) {
            nrow[j] = (row[j] - mean) * rstd;
            yrow[j] = nrow[j] * pg[j] + pb[j];
          }
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 2048 / std::max<int64_t>(xv.cols, 1)));
  return y;
}

void LayerNormBackward(const Tensor& dy, const Tensor& gamma,
                       const LayerNormCache& cache, Tensor* dx, Tensor* dgamma,
                       Tensor* dbeta) {
  const MatView v = As2D(dy);
  // dx rows are fully overwritten; dgamma/dbeta accumulate and stay zeroed.
  *dx = Tensor::Uninitialized(dy.shape());
  *dgamma = Tensor(gamma.shape());
  *dbeta = Tensor(gamma.shape());
  const float* pdy = dy.data();
  const float* pg = gamma.data();
  const float* pn = cache.normalized.data();
  float* pdx = dx->data();
  float* pdg = dgamma->data();
  float* pdb = dbeta->data();
  const float inv_n = 1.0f / static_cast<float>(v.cols);
  // dx rows are independent; dgamma/dbeta reduce over rows via fixed-size
  // chunk partials merged in chunk order (degree-independent bits).
  const int64_t chunks = ReduceChunks(v.rows);
  std::vector<float> partial_g;
  std::vector<float> partial_b;
  if (chunks > 1) {
    partial_g.assign(static_cast<size_t>(chunks * v.cols), 0.0f);
    partial_b.assign(static_cast<size_t>(chunks * v.cols), 0.0f);
  }
  ParallelFor(chunks, [&](int64_t cb, int64_t ce) {
    for (int64_t ch = cb; ch < ce; ++ch) {
      float* dg = chunks > 1 ? partial_g.data() + ch * v.cols : pdg;
      float* db = chunks > 1 ? partial_b.data() + ch * v.cols : pdb;
      const int64_t r0 = ch * kReduceChunkRows;
      const int64_t r1 = std::min(v.rows, r0 + kReduceChunkRows);
      for (int64_t i = r0; i < r1; ++i) {
        const float* dyrow = pdy + i * v.cols;
        const float* nrow = pn + i * v.cols;
        float* dxrow = pdx + i * v.cols;
        const float rstd = cache.rstd[static_cast<size_t>(i)];
        // dxhat = dy * gamma;
        // dx = rstd * (dxhat - mean(dxhat) - n * mean(dxhat*n))
        float sum_dxhat = 0.0f;
        float sum_dxhat_n = 0.0f;
        for (int64_t j = 0; j < v.cols; ++j) {
          const float dxhat = dyrow[j] * pg[j];
          sum_dxhat += dxhat;
          sum_dxhat_n += dxhat * nrow[j];
          dg[j] += dyrow[j] * nrow[j];
          db[j] += dyrow[j];
        }
        const float m1 = sum_dxhat * inv_n;
        const float m2 = sum_dxhat_n * inv_n;
        for (int64_t j = 0; j < v.cols; ++j) {
          const float dxhat = dyrow[j] * pg[j];
          dxrow[j] = rstd * (dxhat - m1 - nrow[j] * m2);
        }
      }
    }
  });
  if (chunks > 1) {
    for (int64_t ch = 0; ch < chunks; ++ch) {
      const float* dg = partial_g.data() + ch * v.cols;
      const float* db = partial_b.data() + ch * v.cols;
      for (int64_t j = 0; j < v.cols; ++j) {
        pdg[j] += dg[j];
        pdb[j] += db[j];
      }
    }
  }
}

Tensor SoftmaxForward(const Tensor& logits) {
  const MatView v = As2D(logits);
  Tensor probs = logits.PooledCopy();
  float* p = probs.data();
  // Row-parallel: each row's max/exp/normalize is independent.
  ParallelFor(
      v.rows,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* row = p + i * v.cols;
          float mx = -std::numeric_limits<float>::infinity();
          for (int64_t j = 0; j < v.cols; ++j) mx = std::max(mx, row[j]);
          if (mx == -std::numeric_limits<float>::infinity()) {
            // Empty or all--inf row (every logit masked out): exp(x - mx)
            // would be NaN. Emit zeros instead.
            for (int64_t j = 0; j < v.cols; ++j) row[j] = 0.0f;
            continue;
          }
          float sum = 0.0f;
          for (int64_t j = 0; j < v.cols; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
          }
          if (sum == 0.0f) {
            for (int64_t j = 0; j < v.cols; ++j) row[j] = 0.0f;
            continue;
          }
          const float inv = 1.0f / sum;
          for (int64_t j = 0; j < v.cols; ++j) row[j] *= inv;
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 2048 / std::max<int64_t>(v.cols, 1)));
  return probs;
}

Tensor SoftmaxBackward(const Tensor& dy, const Tensor& y) {
  const MatView v = As2D(dy);
  NAUTILUS_CHECK(y.shape() == dy.shape());
  Tensor dx = dy.PooledCopy();
  float* pd = dx.data();
  const float* py = y.data();
  // Row-parallel: each row's dot product and rescale are independent.
  ParallelFor(
      v.rows,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          float* drow = pd + i * v.cols;
          const float* yrow = py + i * v.cols;
          float s = 0.0f;
          for (int64_t j = 0; j < v.cols; ++j) s += drow[j] * yrow[j];
          for (int64_t j = 0; j < v.cols; ++j) {
            drow[j] = yrow[j] * (drow[j] - s);
          }
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 2048 / std::max<int64_t>(v.cols, 1)));
  return dx;
}

float SoftmaxCrossEntropy(const Tensor& probs,
                          const std::vector<int32_t>& labels,
                          Tensor* dlogits) {
  const MatView v = As2D(probs);
  NAUTILUS_CHECK_EQ(static_cast<int64_t>(labels.size()), v.rows);
  *dlogits = probs.PooledCopy();
  float* pd = dlogits->data();
  const float* pp = probs.data();
  const float inv_m = 1.0f / static_cast<float>(v.rows);
  // The per-row label writes are disjoint; the scalar loss reduces via
  // fixed-size chunk partials merged in chunk order (degree-independent).
  const int64_t chunks = ReduceChunks(v.rows);
  std::vector<float> partial(static_cast<size_t>(chunks), 0.0f);
  ParallelFor(chunks, [&](int64_t cb, int64_t ce) {
    for (int64_t ch = cb; ch < ce; ++ch) {
      const int64_t r0 = ch * kReduceChunkRows;
      const int64_t r1 = std::min(v.rows, r0 + kReduceChunkRows);
      float acc = 0.0f;
      for (int64_t i = r0; i < r1; ++i) {
        const int32_t label = labels[static_cast<size_t>(i)];
        NAUTILUS_CHECK_GE(label, 0);
        NAUTILUS_CHECK_LT(label, v.cols);
        const float p = std::max(pp[i * v.cols + label], 1e-12f);
        acc -= std::log(p);
        pd[i * v.cols + label] -= 1.0f;
      }
      partial[static_cast<size_t>(ch)] = acc;
    }
  });
  float loss = 0.0f;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    loss += partial[static_cast<size_t>(ch)];
  }
  ScaleInPlace(inv_m, dlogits);
  return loss * inv_m;
}

float Accuracy(const Tensor& probs, const std::vector<int32_t>& labels) {
  const MatView v = As2D(probs);
  NAUTILUS_CHECK_EQ(static_cast<int64_t>(labels.size()), v.rows);
  const float* pp = probs.data();
  // Integer partials: exact at any chunking, so just one partial per chunk.
  const int64_t chunks = ReduceChunks(v.rows);
  std::vector<int64_t> partial(static_cast<size_t>(chunks), 0);
  ParallelFor(chunks, [&](int64_t cb, int64_t ce) {
    for (int64_t ch = cb; ch < ce; ++ch) {
      const int64_t r0 = ch * kReduceChunkRows;
      const int64_t r1 = std::min(v.rows, r0 + kReduceChunkRows);
      int64_t acc = 0;
      for (int64_t i = r0; i < r1; ++i) {
        const float* row = pp + i * v.cols;
        int64_t best = 0;
        for (int64_t j = 1; j < v.cols; ++j) {
          if (row[j] > row[best]) best = j;
        }
        if (best == labels[static_cast<size_t>(i)]) ++acc;
      }
      partial[static_cast<size_t>(ch)] = acc;
    }
  });
  int64_t correct = 0;
  for (int64_t ch = 0; ch < chunks; ++ch) {
    correct += partial[static_cast<size_t>(ch)];
  }
  return static_cast<float>(correct) / static_cast<float>(v.rows);
}

Tensor EmbeddingForward(const Tensor& ids, const Tensor& table) {
  NAUTILUS_CHECK_EQ(table.shape().rank(), 2);
  const int64_t vocab = table.shape().dim(0);
  const int64_t h = table.shape().dim(1);
  std::vector<int64_t> out_dims = ids.shape().dims();
  out_dims.push_back(h);
  Tensor out = Tensor::Uninitialized(Shape(out_dims));
  const float* pid = ids.data();
  const float* pt = table.data();
  float* po = out.data();
  const int64_t n = ids.NumElements();
  ParallelFor(
      n,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const int64_t id = static_cast<int64_t>(pid[i]);
          NAUTILUS_CHECK_GE(id, 0);
          NAUTILUS_CHECK_LT(id, vocab);
          std::copy(pt + id * h, pt + (id + 1) * h, po + i * h);
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(h, 1)));
  return out;
}

void EmbeddingBackward(const Tensor& ids, const Tensor& dy, Tensor* dtable) {
  const int64_t h = dtable->shape().dim(1);
  const int64_t vocab = dtable->shape().dim(0);
  const float* pid = ids.data();
  const float* pdy = dy.data();
  float* pdt = dtable->data();
  const int64_t n = ids.NumElements();
  NAUTILUS_CHECK_EQ(dy.NumElements(), n * h);
  // Scatter-add: duplicate ids collide on table rows, so this stays serial
  // (and keeps the exact sequential accumulation order).
  for (int64_t i = 0; i < n; ++i) {
    const int64_t id = static_cast<int64_t>(pid[i]);
    NAUTILUS_CHECK_GE(id, 0);
    NAUTILUS_CHECK_LT(id, vocab);
    float* drow = pdt + id * h;
    const float* gyrow = pdy + i * h;
    for (int64_t j = 0; j < h; ++j) drow[j] += gyrow[j];
  }
}

Tensor MeanPoolSeq(const Tensor& x) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 3);
  const int64_t b = x.shape().dim(0);
  const int64_t s = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  Tensor out = Tensor::Uninitialized(Shape({b, h}));
  const float* px = x.data();
  float* po = out.data();
  const float inv_s = 1.0f / static_cast<float>(s);
  ParallelFor(
      b,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          float* orow = po + i * h;
          // Output storage is uninitialized: seed with t = 0, then add.
          std::copy(px + i * s * h, px + i * s * h + h, orow);
          for (int64_t t = 1; t < s; ++t) {
            const float* row = px + (i * s + t) * h;
            for (int64_t j = 0; j < h; ++j) orow[j] += row[j];
          }
          for (int64_t j = 0; j < h; ++j) orow[j] *= inv_s;
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(s * h, 1)));
  return out;
}

Tensor MeanPoolSeqBackward(const Tensor& dy, const Shape& x_shape) {
  const int64_t b = x_shape.dim(0);
  const int64_t s = x_shape.dim(1);
  const int64_t h = x_shape.dim(2);
  NAUTILUS_CHECK_EQ(dy.NumElements(), b * h);
  Tensor dx = Tensor::Uninitialized(x_shape);
  const float* pdy = dy.data();
  float* pdx = dx.data();
  const float inv_s = 1.0f / static_cast<float>(s);
  ParallelFor(
      b,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float* dyrow = pdy + i * h;
          for (int64_t t = 0; t < s; ++t) {
            float* row = pdx + (i * s + t) * h;
            for (int64_t j = 0; j < h; ++j) row[j] = dyrow[j] * inv_s;
          }
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(s * h, 1)));
  return dx;
}

Tensor SelectSeqPosition(const Tensor& x, int64_t position) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 3);
  const int64_t b = x.shape().dim(0);
  const int64_t s = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  if (position < 0) position += s;
  NAUTILUS_CHECK_GE(position, 0);
  NAUTILUS_CHECK_LT(position, s);
  Tensor out = Tensor::Uninitialized(Shape({b, h}));
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < b; ++i) {
    const float* row = px + (i * s + position) * h;
    std::copy(row, row + h, po + i * h);
  }
  return out;
}

Tensor SelectSeqPositionBackward(const Tensor& dy, const Shape& x_shape,
                                 int64_t position) {
  const int64_t b = x_shape.dim(0);
  const int64_t s = x_shape.dim(1);
  const int64_t h = x_shape.dim(2);
  if (position < 0) position += s;
  Tensor dx(x_shape);
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (int64_t i = 0; i < b; ++i) {
    float* row = pdx + (i * s + position) * h;
    const float* dyrow = pdy + i * h;
    std::copy(dyrow, dyrow + h, row);
  }
  return dx;
}

Tensor ConcatLastDim(const std::vector<const Tensor*>& xs) {
  NAUTILUS_CHECK(!xs.empty());
  const MatView first = As2D(*xs[0]);
  int64_t total_cols = 0;
  for (const Tensor* t : xs) {
    const MatView v = As2D(*t);
    NAUTILUS_CHECK_EQ(v.rows, first.rows);
    total_cols += v.cols;
  }
  std::vector<int64_t> out_dims = xs[0]->shape().dims();
  out_dims.back() = total_cols;
  Tensor out = Tensor::Uninitialized(Shape(out_dims));
  float* po = out.data();
  ParallelFor(
      first.rows,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          int64_t offset = 0;
          for (const Tensor* t : xs) {
            const MatView v = As2D(*t);
            const float* row = t->data() + i * v.cols;
            std::copy(row, row + v.cols, po + i * total_cols + offset);
            offset += v.cols;
          }
        }
      },
      /*min_chunk=*/
      std::max<int64_t>(1, 4096 / std::max<int64_t>(total_cols, 1)));
  return out;
}

std::vector<Tensor> SplitLastDim(const Tensor& dy,
                                 const std::vector<int64_t>& sizes) {
  const MatView v = As2D(dy);
  int64_t total = 0;
  for (int64_t s : sizes) total += s;
  NAUTILUS_CHECK_EQ(total, v.cols);
  std::vector<Tensor> out;
  out.reserve(sizes.size());
  int64_t offset = 0;
  for (int64_t cols : sizes) {
    std::vector<int64_t> dims = dy.shape().dims();
    dims.back() = cols;
    Tensor piece = Tensor::Uninitialized(Shape(dims));
    float* pp = piece.data();
    const float* pd = dy.data();
    ParallelFor(
        v.rows,
        [&](int64_t row_begin, int64_t row_end) {
          for (int64_t i = row_begin; i < row_end; ++i) {
            std::copy(pd + i * v.cols + offset, pd + i * v.cols + offset + cols,
                      pp + i * cols);
          }
        },
        /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(cols, 1)));
    out.push_back(std::move(piece));
    offset += cols;
  }
  return out;
}

Tensor SplitHeads(const Tensor& x, int64_t heads) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 3);
  const int64_t b = x.shape().dim(0);
  const int64_t s = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  NAUTILUS_CHECK_EQ(h % heads, 0);
  const int64_t dh = h / heads;
  Tensor out = Tensor::Uninitialized(Shape({b, heads, s, dh}));
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(
      b,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          for (int64_t t = 0; t < s; ++t) {
            const float* row = px + (i * s + t) * h;
            for (int64_t hd = 0; hd < heads; ++hd) {
              float* orow = po + ((i * heads + hd) * s + t) * dh;
              std::copy(row + hd * dh, row + (hd + 1) * dh, orow);
            }
          }
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(s * h, 1)));
  return out;
}

Tensor MergeHeads(const Tensor& x) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 4);
  const int64_t b = x.shape().dim(0);
  const int64_t heads = x.shape().dim(1);
  const int64_t s = x.shape().dim(2);
  const int64_t dh = x.shape().dim(3);
  Tensor out = Tensor::Uninitialized(Shape({b, s, heads * dh}));
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(
      b,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          for (int64_t hd = 0; hd < heads; ++hd) {
            for (int64_t t = 0; t < s; ++t) {
              const float* row = px + ((i * heads + hd) * s + t) * dh;
              float* orow = po + (i * s + t) * heads * dh + hd * dh;
              std::copy(row, row + dh, orow);
            }
          }
        }
      },
      /*min_chunk=*/
      std::max<int64_t>(1, 4096 / std::max<int64_t>(s * heads * dh, 1)));
  return out;
}

namespace {

// Softmax(q K^T * scale) V for ONE query row over its first `valid` key
// rows. This is the single arithmetic definition of an attention row:
// Every attention path (AttentionForward, AttentionInference,
// AttentionDecodeRow, AttentionDecodeRowPaged) funnels here, which is what
// makes incremental KV-cache decode bitwise-equal to the full-sequence
// forward — paged or not. Key/value position j resolves through a page
// table: `k_pages[j / page_rows] + head_off + (j % page_rows) * dh`; the
// contiguous callers pass a single page spanning all rows, so both layouts
// execute the exact float sequence of the historical inline kernel
// (score+max pass, exp+sum pass, normalize+accumulate pass, each in
// ascending j).
//
// Guards (the NaN bugfix): an empty valid set, an all--inf score row, or a
// fully-underflowed exp-sum emits zeros instead of dividing by zero.
// `scores` receives the post-softmax probabilities for [0, valid).
inline void AttentionRowKernelPaged(const float* qrow,
                                    const float* const* k_pages,
                                    const float* const* v_pages,
                                    int64_t head_off, int64_t page_rows,
                                    int64_t valid, int64_t dh, float scale,
                                    float* scores, float* orow) {
  // Output storage may be uninitialized; clear before accumulating.
  for (int64_t d = 0; d < dh; ++d) orow[d] = 0.0f;
  if (valid <= 0) return;
  float mx = -std::numeric_limits<float>::infinity();
  for (int64_t j = 0; j < valid;) {
    const int64_t page = j / page_rows;
    const int64_t pend = std::min(valid, (page + 1) * page_rows);
    const float* krow = k_pages[page] + head_off + (j - page * page_rows) * dh;
    for (; j < pend; ++j, krow += dh) {
      float acc = 0.0f;
      for (int64_t d = 0; d < dh; ++d) acc += qrow[d] * krow[d];
      scores[j] = acc * scale;
      mx = std::max(mx, scores[j]);
    }
  }
  if (mx == -std::numeric_limits<float>::infinity()) {
    // Every score is -inf: exp(s - mx) would be exp(NaN). Treat the row as
    // fully masked.
    for (int64_t j = 0; j < valid; ++j) scores[j] = 0.0f;
    return;
  }
  float sum = 0.0f;
  for (int64_t j = 0; j < valid; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  if (sum == 0.0f) {
    for (int64_t j = 0; j < valid; ++j) scores[j] = 0.0f;
    return;
  }
  const float inv = 1.0f / sum;
  for (int64_t j = 0; j < valid;) {
    const int64_t page = j / page_rows;
    const int64_t pend = std::min(valid, (page + 1) * page_rows);
    const float* vrow = v_pages[page] + head_off + (j - page * page_rows) * dh;
    for (; j < pend; ++j, vrow += dh) {
      scores[j] *= inv;
      for (int64_t d = 0; d < dh; ++d) orow[d] += scores[j] * vrow[d];
    }
  }
}

// Contiguous-layout wrapper: one page spanning every row.
inline void AttentionRowKernel(const float* qrow, const float* krows,
                               const float* vrows, int64_t valid, int64_t dh,
                               float scale, float* scores, float* orow) {
  const float* k_pages[1] = {krows};
  const float* v_pages[1] = {vrows};
  AttentionRowKernelPaged(qrow, k_pages, v_pages, /*head_off=*/0,
                          /*page_rows=*/valid > 0 ? valid : 1, valid, dh,
                          scale, scores, orow);
}

// Visible key count for query row `i` of batch element `bi` under `mask`
// (null mask = all `s` keys).
inline int64_t MaskValidKeys(const AttentionMask* mask, int64_t bi, int64_t i,
                             int64_t s) {
  int64_t valid = s;
  if (mask != nullptr) {
    if (mask->causal) valid = std::min(valid, i + 1);
    if (mask->valid_lens != nullptr) {
      valid = std::min(valid, std::max<int64_t>(mask->valid_lens[bi], 0));
    }
  }
  return valid;
}

}  // namespace

Tensor AttentionForward(const Tensor& q, const Tensor& k, const Tensor& v,
                        AttentionCache* cache, const AttentionMask* mask) {
  NAUTILUS_CHECK_EQ(q.shape().rank(), 4);
  NAUTILUS_CHECK(q.shape() == k.shape());
  NAUTILUS_CHECK(q.shape() == v.shape());
  const int64_t b = q.shape().dim(0);
  const int64_t heads = q.shape().dim(1);
  const int64_t s = q.shape().dim(2);
  const int64_t dh = q.shape().dim(3);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  cache->probs = Tensor::Uninitialized(Shape({b, heads, s, s}));
  Tensor out = Tensor::Uninitialized(q.shape());
  const int64_t plane = s * dh;
  // Each (batch, head) plane touches disjoint slices of probs and out.
  ParallelFor(b * heads, [&](int64_t bh_begin, int64_t bh_end) {
  for (int64_t bh = bh_begin; bh < bh_end; ++bh) {
    const int64_t bi = bh / heads;
    const float* pq = q.data() + bh * plane;
    const float* pk = k.data() + bh * plane;
    const float* pv = v.data() + bh * plane;
    float* pp = cache->probs.data() + bh * s * s;
    float* po = out.data() + bh * plane;
    for (int64_t i = 0; i < s; ++i) {
      float* prow = pp + i * s;
      const int64_t valid = MaskValidKeys(mask, bi, i, s);
      AttentionRowKernel(pq + i * dh, pk, pv, valid, dh, scale, prow,
                         po + i * dh);
      // Masked-out probabilities are zero so AttentionBackward (which reads
      // the full row) never routes gradient through them.
      for (int64_t j = valid; j < s; ++j) prow[j] = 0.0f;
    }
  }
  });
  return out;
}

Tensor AttentionInference(const Tensor& q, const Tensor& k, const Tensor& v,
                          const AttentionMask* mask) {
  NAUTILUS_CHECK_EQ(q.shape().rank(), 4);
  NAUTILUS_CHECK(q.shape() == k.shape());
  NAUTILUS_CHECK(q.shape() == v.shape());
  const int64_t b = q.shape().dim(0);
  const int64_t heads = q.shape().dim(1);
  const int64_t s = q.shape().dim(2);
  const int64_t dh = q.shape().dim(3);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor out = Tensor::Uninitialized(q.shape());
  const int64_t plane = s * dh;
  ParallelFor(b * heads, [&](int64_t bh_begin, int64_t bh_end) {
  // One probability row of scratch per task instead of the O(b*heads*s^2)
  // cache tensor.
  std::vector<float> scratch(static_cast<size_t>(s));
  for (int64_t bh = bh_begin; bh < bh_end; ++bh) {
    const int64_t bi = bh / heads;
    const float* pq = q.data() + bh * plane;
    const float* pk = k.data() + bh * plane;
    const float* pv = v.data() + bh * plane;
    float* po = out.data() + bh * plane;
    for (int64_t i = 0; i < s; ++i) {
      AttentionRowKernel(pq + i * dh, pk, pv, MaskValidKeys(mask, bi, i, s),
                         dh, scale, scratch.data(), po + i * dh);
    }
  }
  });
  return out;
}

void AttentionDecodeRow(const float* q_row, const float* k_rows,
                        const float* v_rows, int64_t len, int64_t dh,
                        float* scratch, float* out_row) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  AttentionRowKernel(q_row, k_rows, v_rows, len, dh, scale, scratch, out_row);
}

void AttentionDecodeRowPaged(const float* q_row, const float* const* k_pages,
                             const float* const* v_pages, int64_t head_offset,
                             int64_t len, int64_t page_rows, int64_t dh,
                             float* scratch, float* out_row) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  AttentionRowKernelPaged(q_row, k_pages, v_pages, head_offset, page_rows,
                          len, dh, scale, scratch, out_row);
}

void AttentionBackward(const Tensor& dy, const Tensor& q, const Tensor& k,
                       const Tensor& v, const AttentionCache& cache,
                       Tensor* dq, Tensor* dk, Tensor* dv) {
  const int64_t b = q.shape().dim(0);
  const int64_t heads = q.shape().dim(1);
  const int64_t s = q.shape().dim(2);
  const int64_t dh = q.shape().dim(3);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  *dq = Tensor(q.shape());
  *dk = Tensor(k.shape());
  *dv = Tensor(v.shape());
  const int64_t plane = s * dh;
  // Plane-parallel like the forward pass: dq/dk/dv slices are disjoint per
  // (batch, head), so accumulation order within a plane never changes.
  ParallelFor(b * heads, [&](int64_t bh_begin, int64_t bh_end) {
  std::vector<float> dp(static_cast<size_t>(s));
  for (int64_t bh = bh_begin; bh < bh_end; ++bh) {
    const float* pdy = dy.data() + bh * plane;
    const float* pq = q.data() + bh * plane;
    const float* pk = k.data() + bh * plane;
    const float* pv = v.data() + bh * plane;
    const float* pp = cache.probs.data() + bh * s * s;
    float* pdq = dq->data() + bh * plane;
    float* pdk = dk->data() + bh * plane;
    float* pdv = dv->data() + bh * plane;
    for (int64_t i = 0; i < s; ++i) {
      const float* dyrow = pdy + i * dh;
      const float* prow = pp + i * s;
      // dP = dY V^T ; dV += P^T dY
      float dot = 0.0f;
      for (int64_t j = 0; j < s; ++j) {
        const float* vrow = pv + j * dh;
        float acc = 0.0f;
        for (int64_t d = 0; d < dh; ++d) acc += dyrow[d] * vrow[d];
        dp[static_cast<size_t>(j)] = acc;
        dot += acc * prow[j];
        float* dvrow = pdv + j * dh;
        for (int64_t d = 0; d < dh; ++d) dvrow[d] += prow[j] * dyrow[d];
      }
      // dS = P * (dP - sum(dP * P)) (softmax backward), scaled.
      const float* qrow = pq + i * dh;
      float* dqrow = pdq + i * dh;
      for (int64_t j = 0; j < s; ++j) {
        const float ds = prow[j] * (dp[static_cast<size_t>(j)] - dot) * scale;
        if (ds == 0.0f) continue;
        const float* krow = pk + j * dh;
        float* dkrow = pdk + j * dh;
        for (int64_t d = 0; d < dh; ++d) {
          dqrow[d] += ds * krow[d];
          dkrow[d] += ds * qrow[d];
        }
      }
    }
  }
  });
}

namespace {

// Computes conv output spatial size.
int64_t ConvOut(int64_t in, int64_t kernel, int64_t stride, int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Tensor Conv2DForward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                     const Conv2DArgs& args) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 4);
  NAUTILUS_CHECK_EQ(weight.shape().rank(), 4);
  const int64_t b = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t w = x.shape().dim(3);
  const int64_t oc = weight.shape().dim(0);
  NAUTILUS_CHECK_EQ(weight.shape().dim(1), c);
  const int64_t kh = weight.shape().dim(2);
  const int64_t kw = weight.shape().dim(3);
  const int64_t oh = ConvOut(h, kh, args.stride, args.padding);
  const int64_t ow = ConvOut(w, kw, args.stride, args.padding);
  Tensor out = Tensor::Uninitialized(Shape({b, oc, oh, ow}));
  const float* px = x.data();
  const float* pw = weight.data();
  const float* pb = bias.empty() ? nullptr : bias.data();
  float* po = out.data();
  // One output plane per (sample, output channel): all writes disjoint.
  ParallelFor(b * oc, [&](int64_t p_begin, int64_t p_end) {
    for (int64_t pidx = p_begin; pidx < p_end; ++pidx) {
      const int64_t n = pidx / oc;
      const int64_t o = pidx % oc;
      float* oplane = po + (n * oc + o) * oh * ow;
      const float bias_v = pb != nullptr ? pb[o] : 0.0f;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias_v;
          const int64_t iy0 = oy * args.stride - args.padding;
          const int64_t ix0 = ox * args.stride - args.padding;
          for (int64_t ci = 0; ci < c; ++ci) {
            const float* xplane = px + (n * c + ci) * h * w;
            const float* wplane = pw + ((o * c + ci) * kh) * kw;
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= w) continue;
                acc += xplane[iy * w + ix] * wplane[ky * kw + kx];
              }
            }
          }
          oplane[oy * ow + ox] = acc;
        }
      }
    }
  });
  return out;
}

void Conv2DBackward(const Tensor& dy, const Tensor& x, const Tensor& weight,
                    const Conv2DArgs& args, Tensor* dx, Tensor* dweight,
                    Tensor* dbias) {
  const int64_t b = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t w = x.shape().dim(3);
  const int64_t oc = weight.shape().dim(0);
  const int64_t kh = weight.shape().dim(2);
  const int64_t kw = weight.shape().dim(3);
  const int64_t oh = dy.shape().dim(2);
  const int64_t ow = dy.shape().dim(3);
  if (dx != nullptr) *dx = Tensor(x.shape());
  if (dweight != nullptr) *dweight = Tensor(weight.shape());
  if (dbias != nullptr) *dbias = Tensor(Shape({oc}));
  const float* pdy = dy.data();
  const float* px = x.data();
  const float* pw = weight.data();
  // dx is disjoint per sample; dweight/dbias reduce over samples via
  // fixed-size batch chunks (size depends only on b), with chunk partials
  // merged serially in chunk order so gradients are bitwise identical at
  // any parallelism degree.
  const int64_t wsize = weight.NumElements();
  const int64_t chunk_b = std::max<int64_t>(1, (b + 15) / 16);
  const int64_t chunks = (b + chunk_b - 1) / chunk_b;
  std::vector<float> partial_w;
  std::vector<float> partial_b;
  if (chunks > 1) {
    if (dweight != nullptr) {
      partial_w.assign(static_cast<size_t>(chunks * wsize), 0.0f);
    }
    if (dbias != nullptr) {
      partial_b.assign(static_cast<size_t>(chunks * oc), 0.0f);
    }
  }
  ParallelFor(chunks, [&](int64_t cb, int64_t ce) {
    for (int64_t ch = cb; ch < ce; ++ch) {
      float* dw = nullptr;
      if (dweight != nullptr) {
        dw = chunks > 1 ? partial_w.data() + ch * wsize : dweight->data();
      }
      float* db = nullptr;
      if (dbias != nullptr) {
        db = chunks > 1 ? partial_b.data() + ch * oc : dbias->data();
      }
      const int64_t n0 = ch * chunk_b;
      const int64_t n1 = std::min(b, n0 + chunk_b);
      for (int64_t n = n0; n < n1; ++n) {
        for (int64_t o = 0; o < oc; ++o) {
          const float* dyplane = pdy + (n * oc + o) * oh * ow;
          for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
              const float g = dyplane[oy * ow + ox];
              if (g == 0.0f) continue;
              if (db != nullptr) db[o] += g;
              const int64_t iy0 = oy * args.stride - args.padding;
              const int64_t ix0 = ox * args.stride - args.padding;
              for (int64_t ci = 0; ci < c; ++ci) {
                const float* xplane = px + (n * c + ci) * h * w;
                const float* wplane = pw + ((o * c + ci) * kh) * kw;
                float* dxplane =
                    dx != nullptr ? dx->data() + (n * c + ci) * h * w : nullptr;
                float* dwplane =
                    dw != nullptr ? dw + ((o * c + ci) * kh) * kw : nullptr;
                for (int64_t ky = 0; ky < kh; ++ky) {
                  const int64_t iy = iy0 + ky;
                  if (iy < 0 || iy >= h) continue;
                  for (int64_t kx = 0; kx < kw; ++kx) {
                    const int64_t ix = ix0 + kx;
                    if (ix < 0 || ix >= w) continue;
                    if (dwplane != nullptr) {
                      dwplane[ky * kw + kx] += g * xplane[iy * w + ix];
                    }
                    if (dxplane != nullptr) {
                      dxplane[iy * w + ix] += g * wplane[ky * kw + kx];
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  });
  if (chunks > 1) {
    for (int64_t ch = 0; ch < chunks; ++ch) {
      if (dweight != nullptr) {
        const float* dw = partial_w.data() + ch * wsize;
        float* out_w = dweight->data();
        for (int64_t i = 0; i < wsize; ++i) out_w[i] += dw[i];
      }
      if (dbias != nullptr) {
        const float* db = partial_b.data() + ch * oc;
        float* out_b = dbias->data();
        for (int64_t o = 0; o < oc; ++o) out_b[o] += db[o];
      }
    }
  }
}

Tensor MaxPool2DForward(const Tensor& x, int64_t kernel, MaxPoolCache* cache) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 4);
  const int64_t b = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t h = x.shape().dim(2);
  const int64_t w = x.shape().dim(3);
  const int64_t oh = h / kernel;
  const int64_t ow = w / kernel;
  NAUTILUS_CHECK_GT(oh, 0);
  NAUTILUS_CHECK_GT(ow, 0);
  Tensor out = Tensor::Uninitialized(Shape({b, c, oh, ow}));
  cache->argmax.assign(static_cast<size_t>(out.NumElements()), 0);
  const float* px = x.data();
  float* po = out.data();
  // Plane-parallel: each (sample, channel) plane owns its output slice.
  ParallelFor(b * c, [&](int64_t p_begin, int64_t p_end) {
    for (int64_t pidx = p_begin; pidx < p_end; ++pidx) {
      const float* xplane = px + pidx * h * w;
      const int64_t plane_base = pidx * h * w;
      int64_t oi = pidx * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            for (int64_t kx = 0; kx < kernel; ++kx) {
              const int64_t iy = oy * kernel + ky;
              const int64_t ix = ox * kernel + kx;
              const float v = xplane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          po[oi] = best;
          cache->argmax[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  });
  return out;
}

Tensor MaxPool2DBackward(const Tensor& dy, const Shape& x_shape,
                         const MaxPoolCache& cache) {
  Tensor dx(x_shape);
  const float* pdy = dy.data();
  float* pdx = dx.data();
  NAUTILUS_CHECK_EQ(static_cast<int64_t>(cache.argmax.size()),
                    dy.NumElements());
  // Pooling windows are disjoint (stride == kernel), so every argmax target
  // is written by exactly one output element — the scatter is race-free.
  ParallelFor(
      dy.NumElements(),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          pdx[cache.argmax[static_cast<size_t>(i)]] += pdy[i];
        }
      },
      /*min_chunk=*/16384);
  return dx;
}

Tensor GlobalAvgPool(const Tensor& x) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 4);
  const int64_t b = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  Tensor out = Tensor::Uninitialized(Shape({b, c}));
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(hw);
  ParallelFor(
      b * c,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float* plane = px + i * hw;
          float acc = 0.0f;
          for (int64_t j = 0; j < hw; ++j) acc += plane[j];
          po[i] = acc * inv;
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(hw, 1)));
  return out;
}

Tensor GlobalAvgPoolBackward(const Tensor& dy, const Shape& x_shape) {
  const int64_t b = x_shape.dim(0);
  const int64_t c = x_shape.dim(1);
  const int64_t hw = x_shape.dim(2) * x_shape.dim(3);
  Tensor dx = Tensor::Uninitialized(x_shape);
  const float* pdy = dy.data();
  float* pdx = dx.data();
  const float inv = 1.0f / static_cast<float>(hw);
  ParallelFor(
      b * c,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float g = pdy[i] * inv;
          float* plane = pdx + i * hw;
          for (int64_t j = 0; j < hw; ++j) plane[j] = g;
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(hw, 1)));
  return dx;
}

Tensor ChannelAffineForward(const Tensor& x, const Tensor& scale,
                            const Tensor& shift) {
  NAUTILUS_CHECK_EQ(x.shape().rank(), 4);
  const int64_t b = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  NAUTILUS_CHECK_EQ(scale.NumElements(), c);
  NAUTILUS_CHECK_EQ(shift.NumElements(), c);
  Tensor out = Tensor::Uninitialized(x.shape());
  const float* px = x.data();
  const float* ps = scale.data();
  const float* pt = shift.data();
  float* po = out.data();
  ParallelFor(
      b * c,
      [&](int64_t begin, int64_t end) {
        for (int64_t pidx = begin; pidx < end; ++pidx) {
          const int64_t ci = pidx % c;
          const float s = ps[ci];
          const float t = pt[ci];
          const float* xplane = px + pidx * hw;
          float* oplane = po + pidx * hw;
          for (int64_t j = 0; j < hw; ++j) oplane[j] = xplane[j] * s + t;
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(hw, 1)));
  return out;
}

void ChannelAffineBackward(const Tensor& dy, const Tensor& x,
                           const Tensor& scale, Tensor* dx, Tensor* dscale,
                           Tensor* dshift) {
  const int64_t b = x.shape().dim(0);
  const int64_t c = x.shape().dim(1);
  const int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  // dx is fully overwritten; dscale/dshift accumulate and stay zeroed.
  if (dx != nullptr) *dx = Tensor::Uninitialized(x.shape());
  if (dscale != nullptr) *dscale = Tensor(Shape({c}));
  if (dshift != nullptr) *dshift = Tensor(Shape({c}));
  const float* pdy = dy.data();
  const float* px = x.data();
  const float* ps = scale.data();
  // Channel-parallel: each worker owns dscale[ci]/dshift[ci] and the (n, ci)
  // dx planes for its channels, accumulating over samples in ascending order
  // — the same per-channel order as the sequential loop, so bits match.
  ParallelFor(
      c,
      [&](int64_t c_begin, int64_t c_end) {
        for (int64_t ci = c_begin; ci < c_end; ++ci) {
          float acc_scale = 0.0f;
          float acc_shift = 0.0f;
          for (int64_t n = 0; n < b; ++n) {
            const float* dyplane = pdy + (n * c + ci) * hw;
            const float* xplane = px + (n * c + ci) * hw;
            float* dxplane =
                dx != nullptr ? dx->data() + (n * c + ci) * hw : nullptr;
            float plane_scale = 0.0f;
            float plane_shift = 0.0f;
            for (int64_t j = 0; j < hw; ++j) {
              plane_scale += dyplane[j] * xplane[j];
              plane_shift += dyplane[j];
              if (dxplane != nullptr) dxplane[j] = dyplane[j] * ps[ci];
            }
            acc_scale += plane_scale;
            acc_shift += plane_shift;
          }
          if (dscale != nullptr) dscale->data()[ci] += acc_scale;
          if (dshift != nullptr) dshift->data()[ci] += acc_shift;
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(b * hw, 1)));
}

}  // namespace ops
}  // namespace nautilus
