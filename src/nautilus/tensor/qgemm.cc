#include "nautilus/tensor/qgemm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "nautilus/tensor/qgemm_kernels.h"
#include "nautilus/util/buffer_pool.h"
#include "nautilus/util/parallel.h"

namespace nautilus {
namespace ops {

namespace internal {

void QMicroKernelPortable(int64_t kc2, const int16_t* ap, const int16_t* bp,
                          int32_t* c, int64_t ldc, bool accumulate) {
  int32_t acc[kQMR * kQNR];
  if (accumulate) {
    for (int64_t i = 0; i < kQMR; ++i) {
      for (int64_t j = 0; j < kQNR; ++j) acc[i * kQNR + j] = c[i * ldc + j];
    }
  } else {
    for (int64_t i = 0; i < kQMR * kQNR; ++i) acc[i] = 0;
  }
  for (int64_t p = 0; p < kc2; ++p) {
    const int16_t* bk = bp + p * kQNR * 2;
    const int16_t* ak = ap + p * kQMR * 2;
    for (int64_t i = 0; i < kQMR; ++i) {
      const int32_t a0 = ak[i * 2];
      const int32_t a1 = ak[i * 2 + 1];
      int32_t* row = acc + i * kQNR;
      for (int64_t j = 0; j < kQNR; ++j) {
        row[j] += a0 * bk[j * 2] + a1 * bk[j * 2 + 1];
      }
    }
  }
  for (int64_t i = 0; i < kQMR; ++i) {
    for (int64_t j = 0; j < kQNR; ++j) c[i * ldc + j] = acc[i * kQNR + j];
  }
}

}  // namespace internal

namespace {

using internal::kQMR;
using internal::kQNR;

// Same BLIS blocking as the f32 GEMM (gemm.cc); the int8 panels are half the
// bytes, so the working set is strictly smaller. kKC is even, so every kc
// block starts on a pair boundary and the k-pair phase never shifts between
// blocks.
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 48;
constexpr int64_t kNC = 2048;

static_assert(kKC % 2 == 0, "k blocks must hold whole int16 pairs");
static_assert(kMC % kQMR == 0, "row panels must hold whole micro-tiles");
static_assert(kNC % kQNR == 0, "col blocks must hold whole micro-tiles");

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

using QMicroKernelFn = void (*)(int64_t, const int16_t*, const int16_t*,
                                int32_t*, int64_t, bool);

std::atomic<void (*)(bool)> g_observer{nullptr};

void NotifyObserver(bool simd) {
  if (auto* fn = g_observer.load(std::memory_order_relaxed)) fn(simd);
}

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Must match ApplyActivation in gemm.cc bit for bit (same expressions, same
// constants), so quantized and f32 dense layers share one activation
// definition up to the quantization error of their inputs.
float ApplyActivation(EpilogueKind kind, float z) {
  switch (kind) {
    case EpilogueKind::kNone:
    case EpilogueKind::kBias:
      return z;
    case EpilogueKind::kBiasRelu:
      return z > 0.0f ? z : 0.0f;
    case EpilogueKind::kBiasTanh:
      return std::tanh(z);
    case EpilogueKind::kBiasGelu: {
      const float t = std::tanh(kGeluC * (z + kGeluA * z * z * z));
      return 0.5f * z * (1.0f + t);
    }
  }
  return z;
}

// Packs rows [i0, i0+mc) x ks [pc, pc+kc) of the int8 A into kQMR-row panels
// of sign-extended int16 k-pairs (see qgemm_kernels.h). Rows past mc and an
// odd trailing k step are zero-padded.
void PackA8(const int8_t* a, int64_t k, int64_t i0, int64_t mc, int64_t pc,
            int64_t kc, int16_t* dst, bool simd) {
  const int64_t kc2 = (kc + 1) / 2;
  const int64_t panels = CeilDiv(mc, kQMR);
  for (int64_t q = 0; q < panels; ++q) {
    int16_t* panel = dst + q * kc2 * kQMR * 2;
    const int64_t rows = std::min(kQMR, mc - q * kQMR);
    // Row-at-a-time: each row's k-run is read sequentially and its pairs
    // land at a stride of kQMR pairs inside the panel.
    for (int64_t i = 0; i < rows; ++i) {
      const int8_t* arow = a + (i0 + q * kQMR + i) * k + pc;
      int16_t* slot0 = panel + i * 2;
#ifdef NAUTILUS_HAVE_AVX2_KERNEL
      if (simd) {
        internal::PackARowPairsAvx2(arow, kc, slot0);
        continue;
      }
#endif
      for (int64_t p2 = 0; p2 < kc2; ++p2) {
        int16_t* slot = slot0 + p2 * kQMR * 2;
        slot[0] = arow[2 * p2];
        slot[1] = (2 * p2 + 1) < kc ? int16_t{arow[2 * p2 + 1]} : int16_t{0};
      }
    }
    for (int64_t i = rows; i < kQMR; ++i) {
      for (int64_t p2 = 0; p2 < kc2; ++p2) {
        int16_t* slot = panel + p2 * kQMR * 2 + i * 2;
        slot[0] = 0;
        slot[1] = 0;
      }
    }
  }
  (void)simd;
}

// Packs ks [pc, pc+kc) x cols [jc, jc+nc) of the int8 B ([k,n] row-major)
// into kQNR-column panels of interleaved int16 k-pairs, zero-padded at the
// right edge and on an odd trailing k step.
void PackB8(const int8_t* b, int64_t n, int64_t pc, int64_t kc, int64_t jc,
            int64_t nc, int16_t* dst, bool simd) {
  const int64_t kc2 = (kc + 1) / 2;
  const int64_t panels = CeilDiv(nc, kQNR);
  nautilus::ParallelFor(
      panels,
      [&](int64_t qb, int64_t qe) {
        for (int64_t q = qb; q < qe; ++q) {
          int16_t* panel = dst + q * kc2 * kQNR * 2;
          const int64_t cols = std::min(kQNR, nc - q * kQNR);
          const int64_t col0 = jc + q * kQNR;
          int64_t p2 = 0;
#ifdef NAUTILUS_HAVE_AVX2_KERNEL
          if (simd && cols == kQNR) {
            // Full-width panel: each k-pair step interleaves two contiguous
            // 16-byte runs of B, which the AVX2 path does in a handful of
            // shuffles instead of 32 scalar stores.
            for (; 2 * p2 + 1 < kc; ++p2) {
              const int64_t k0 = pc + 2 * p2;
              internal::PackBPairsAvx2(b + k0 * n + col0, b + (k0 + 1) * n + col0,
                                       panel + p2 * kQNR * 2);
            }
          }
#endif
          for (; p2 < kc2; ++p2) {
            int16_t* row = panel + p2 * kQNR * 2;
            const int64_t k0 = pc + 2 * p2;
            const bool has1 = (2 * p2 + 1) < kc;
            for (int64_t j = 0; j < cols; ++j) {
              row[j * 2] = b[k0 * n + col0 + j];
              row[j * 2 + 1] = has1 ? b[(k0 + 1) * n + col0 + j] : int16_t{0};
            }
            for (int64_t j = cols; j < kQNR; ++j) {
              row[j * 2] = 0;
              row[j * 2 + 1] = 0;
            }
          }
        }
      },
      /*min_chunk=*/4);
  (void)simd;
}

// Fused dequant + bias + activation over one mr x nr int32 tile: one pass
// writes the float output (and optional pre-activation). The dequant
// expression float(acc) * a_scale * b_scale (in that order) is shared with
// QGemmInt8Reference, so blocked and reference results are bit-identical.
void DequantEpilogueTile(const int32_t* ci, int64_t ldci, int64_t mr,
                         int64_t nr, int64_t row0, int64_t col0, int64_t n,
                         const float* a_scales, const float* b_scales,
                         const Epilogue& ep, float* cbase, bool simd) {
#ifdef NAUTILUS_HAVE_AVX2_KERNEL
  if (simd && nr == kQNR &&
      (ep.kind == EpilogueKind::kNone || ep.kind == EpilogueKind::kBias ||
       ep.kind == EpilogueKind::kBiasRelu)) {
    const float* bias =
        ep.kind == EpilogueKind::kNone ? nullptr : ep.bias + col0;
    const bool relu = ep.kind == EpilogueKind::kBiasRelu;
    for (int64_t i = 0; i < mr; ++i) {
      float* prow = ep.pre_activation == nullptr
                        ? nullptr
                        : ep.pre_activation + (row0 + i) * n + col0;
      internal::DequantRow16Avx2(ci + i * ldci, a_scales[row0 + i],
                                 b_scales + col0, bias, relu,
                                 cbase + (row0 + i) * n + col0, prow);
    }
    return;
  }
#endif
  (void)simd;
  for (int64_t i = 0; i < mr; ++i) {
    const float sa = a_scales[row0 + i];
    float* crow = cbase + (row0 + i) * n + col0;
    float* prow = ep.pre_activation == nullptr
                      ? nullptr
                      : ep.pre_activation + (row0 + i) * n + col0;
    for (int64_t j = 0; j < nr; ++j) {
      float z = static_cast<float>(ci[i * ldci + j]) * sa * b_scales[col0 + j];
      if (ep.kind != EpilogueKind::kNone) z += ep.bias[col0 + j];
      if (prow != nullptr) prow[j] = z;
      crow[j] = ApplyActivation(ep.kind, z);
    }
  }
}

// Degenerate k == 0: every integer accumulator is zero; the dequant + bias +
// activation contract must still be honored over uninitialized outputs.
void QGemmEmptyK(int64_t m, int64_t n, float* c, const float* a_scales,
                 const float* b_scales, const Epilogue& ep) {
  const int32_t zero = 0;
  nautilus::ParallelFor(
      m,
      [&](int64_t rb, int64_t re) {
        for (int64_t i = rb; i < re; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            DequantEpilogueTile(&zero, 1, 1, 1, i, j, n, a_scales, b_scales,
                                ep, c, /*simd=*/false);
          }
        }
      },
      /*min_chunk=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(n, 1)));
}

// Rents a float buffer big enough to alias `n16` int16s / `n32` int32s.
// float storage is 4-byte aligned, which satisfies both views.
std::vector<float> RentFor16(util::BufferPool& pool, int64_t n16) {
  return pool.Rent((n16 + 1) / 2);
}

// AVX512-VNNI probe, cached once. The VNNI kernel needs the F/BW/VL base
// set too; all four always travel together on real parts, but check anyway.
bool QGemmVnniAvailable() {
#ifdef NAUTILUS_HAVE_VNNI_KERNEL
  static const bool available =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vnni");
  return available;
#else
  return false;
#endif
}

}  // namespace

const char* QGemmDispatchName() {
  if (GemmSimdEnabled() && QGemmVnniAvailable()) return "avx512-vnni";
  return GemmDispatchName();
}

void SetQGemmObserver(void (*observer)(bool)) {
  g_observer.store(observer, std::memory_order_relaxed);
}

void QGemmInt8(int64_t m, int64_t n, int64_t k, const int8_t* a,
               const float* a_scales, const int8_t* b, const float* b_scales,
               float* c, const Epilogue& ep) {
  if (m <= 0 || n <= 0) return;
  const bool simd = GemmSimdEnabled();
  if (k <= 0) {
    QGemmEmptyK(m, n, c, a_scales, b_scales, ep);
    NotifyObserver(simd);
    return;
  }
  QMicroKernelFn kernel = &internal::QMicroKernelPortable;
#ifdef NAUTILUS_HAVE_AVX2_KERNEL
  if (simd) kernel = &internal::QMicroKernelAvx2;
#endif
#ifdef NAUTILUS_HAVE_VNNI_KERNEL
  if (simd && QGemmVnniAvailable()) kernel = &internal::QMicroKernelVnni;
#endif
  auto& pool = util::BufferPool::Global();

  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t npanels = CeilDiv(nc, kQNR);
    const int64_t kc2_max = (std::min(kKC, k) + 1) / 2;
    std::vector<float> bpack_f =
        RentFor16(pool, npanels * kc2_max * kQNR * 2);
    int16_t* bpack = reinterpret_cast<int16_t*>(bpack_f.data());
    // Integer accumulators for the whole m x nc block persist across kc
    // blocks; the fused dequant pass drains them once the last block lands.
    std::vector<float> cint_f = pool.Rent(m * nc);
    int32_t* cint = reinterpret_cast<int32_t*>(cint_f.data());

    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const int64_t kc2 = (kc + 1) / 2;
      PackB8(b, n, pc, kc, jc, nc, bpack, simd);
      const bool add_into = pc > 0;
      const bool last_block = pc + kc == k;
      const int64_t row_panels = CeilDiv(m, kMC);

      // Fixed row-panel partitioning, as in the f32 GEMM. Integer adds are
      // associative, so determinism here needs no ordering discipline — the
      // partitioning just keeps panel packing local to one task.
      nautilus::ParallelFor(
          row_panels,
          [&](int64_t pb, int64_t pe) {
            std::vector<float> apack_f = RentFor16(pool, kc2 * kMC * 2);
            int16_t* apack = reinterpret_cast<int16_t*>(apack_f.data());
            int32_t tmp[kQMR * kQNR];
            for (int64_t panel = pb; panel < pe; ++panel) {
              const int64_t i0 = panel * kMC;
              const int64_t mc = std::min(kMC, m - i0);
              PackA8(a, k, i0, mc, pc, kc, apack, simd);
              for (int64_t jr = 0; jr < nc; jr += kQNR) {
                const int64_t nr = std::min(kQNR, nc - jr);
                const int16_t* bp = bpack + (jr / kQNR) * kc2 * kQNR * 2;
                for (int64_t ir = 0; ir < mc; ir += kQMR) {
                  const int64_t mr = std::min(kQMR, mc - ir);
                  const int16_t* ap = apack + (ir / kQMR) * kc2 * kQMR * 2;
                  int32_t* ctile = cint + (i0 + ir) * nc + jr;
                  if (mr == kQMR && nr == kQNR) {
                    kernel(kc2, ap, bp, ctile, nc, add_into);
                  } else {
                    // Edge tile: stage through a full scratch tile so the
                    // kernel path is identical to interior tiles.
                    if (add_into) {
                      for (int64_t i = 0; i < kQMR; ++i) {
                        for (int64_t j = 0; j < kQNR; ++j) {
                          tmp[i * kQNR + j] =
                              (i < mr && j < nr) ? ctile[i * nc + j] : 0;
                        }
                      }
                    }
                    kernel(kc2, ap, bp, tmp, kQNR, add_into);
                    for (int64_t i = 0; i < mr; ++i) {
                      for (int64_t j = 0; j < nr; ++j) {
                        ctile[i * nc + j] = tmp[i * kQNR + j];
                      }
                    }
                  }
                  if (last_block) {
                    DequantEpilogueTile(ctile, nc, mr, nr, i0 + ir, jc + jr,
                                        n, a_scales, b_scales, ep, c, simd);
                  }
                }
              }
            }
            pool.Recycle(std::move(apack_f));
          },
          /*min_chunk=*/1);
    }
    pool.Recycle(std::move(cint_f));
    pool.Recycle(std::move(bpack_f));
  }
  NotifyObserver(simd);
}

void QGemmInt8Reference(int64_t m, int64_t n, int64_t k, const int8_t* a,
                        const float* a_scales, const int8_t* b,
                        const float* b_scales, float* c, const Epilogue& ep) {
  if (m <= 0 || n <= 0) return;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(a[i * k + p]) *
               static_cast<int32_t>(b[p * n + j]);
      }
      // Same dequant expression (and evaluation order) as the blocked path.
      float z = static_cast<float>(acc) * a_scales[i] * b_scales[j];
      if (ep.kind != EpilogueKind::kNone) z += ep.bias[j];
      if (ep.pre_activation != nullptr) ep.pre_activation[i * n + j] = z;
      c[i * n + j] = ApplyActivation(ep.kind, z);
    }
  }
}

}  // namespace ops
}  // namespace nautilus
