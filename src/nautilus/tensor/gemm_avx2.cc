// AVX2+FMA micro-kernel, isolated in its own translation unit so only this
// file is built with -mavx2 -mfma; the rest of the library stays baseline
// and the caller (gemm.cc) selects the kernel at runtime via cpuid.
#include "nautilus/tensor/gemm_kernels.h"

#ifdef NAUTILUS_HAVE_AVX2_KERNEL

#include <immintrin.h>

namespace nautilus {
namespace ops {
namespace internal {

void MicroKernelAvx2(int64_t kc, const float* ap, const float* bp, float* c,
                     int64_t ldc, bool accumulate) {
  // 6x16 tile = 12 ymm accumulators; 2 ymm for the B row and 1 broadcast
  // leave one register spare on the 16-register x86-64 file.
  __m256 acc0[kMR];
  __m256 acc1[kMR];
  if (accumulate) {
    for (int64_t i = 0; i < kMR; ++i) {
      acc0[i] = _mm256_loadu_ps(c + i * ldc);
      acc1[i] = _mm256_loadu_ps(c + i * ldc + 8);
    }
  } else {
    for (int64_t i = 0; i < kMR; ++i) {
      acc0[i] = _mm256_setzero_ps();
      acc1[i] = _mm256_setzero_ps();
    }
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    const float* ak = ap + p * kMR;
    for (int64_t i = 0; i < kMR; ++i) {
      const __m256 ai = _mm256_set1_ps(ak[i]);
      acc0[i] = _mm256_fmadd_ps(ai, b0, acc0[i]);
      acc1[i] = _mm256_fmadd_ps(ai, b1, acc1[i]);
    }
  }
  for (int64_t i = 0; i < kMR; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc0[i]);
    _mm256_storeu_ps(c + i * ldc + 8, acc1[i]);
  }
}

}  // namespace internal
}  // namespace ops
}  // namespace nautilus

#endif  // NAUTILUS_HAVE_AVX2_KERNEL
