#ifndef NAUTILUS_TENSOR_GEMM_KERNELS_H_
#define NAUTILUS_TENSOR_GEMM_KERNELS_H_

#include <cstdint>

// Internal to the GEMM implementation: the register-tiled micro-kernels
// shared between gemm.cc (portable) and gemm_avx2.cc (compiled with
// -mavx2 -mfma). Both compute the same kMR x kNR tile update
//
//   C_tile (+)= sum_{p=0}^{kc-1} ap[p*kMR + i] * bp[p*kNR + j]
//
// over packed panels: `ap` holds kMR rows of A column-major within the
// panel (kMR consecutive floats per k step), `bp` holds kNR columns of B
// row-major within the panel (kNR consecutive floats per k step). Both are
// zero-padded to full panel width at the edges by the packing routines.
//
// Determinism: when `accumulate` is set the kernel loads C into the
// accumulators FIRST and then applies k steps in ascending order, so the
// per-element operation order is identical whether a k range is processed
// in one call or split across successive kc blocks.
namespace nautilus {
namespace ops {
namespace internal {

inline constexpr int64_t kMR = 6;   // micro-tile rows
inline constexpr int64_t kNR = 16;  // micro-tile cols (2 AVX2 vectors)

/// Scalar micro-kernel written so the autovectorizer can widen the j loop.
void MicroKernelPortable(int64_t kc, const float* ap, const float* bp,
                         float* c, int64_t ldc, bool accumulate);

#ifdef NAUTILUS_HAVE_AVX2_KERNEL
/// 6x16 FMA micro-kernel: 12 ymm accumulators, 2 B loads + 6 broadcasts
/// per k step. Only call when GemmSimdAvailable() is true.
void MicroKernelAvx2(int64_t kc, const float* ap, const float* bp, float* c,
                     int64_t ldc, bool accumulate);
#endif

}  // namespace internal
}  // namespace ops
}  // namespace nautilus

#endif  // NAUTILUS_TENSOR_GEMM_KERNELS_H_
