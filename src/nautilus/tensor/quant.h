#ifndef NAUTILUS_TENSOR_QUANT_H_
#define NAUTILUS_TENSOR_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nautilus {
namespace quant {

// ---------------------------------------------------------------------------
// Process-wide quantization mode
// ---------------------------------------------------------------------------

/// Reduced-precision policy for frozen (inference-only) compute and for
/// materialized feed shards. Trainable layers always stay f32 — quantization
/// applies only where no gradient ever flows, so training semantics are
/// untouched.
///  - kOff:  everything f32 (default).
///  - kInt8: frozen dense layers run the packed int8 GEMM with per-row
///           activation scales and per-output-channel weight scales;
///           materialized feeds are stored as int8 rows + f32 row scales
///           (~0.25x the f32 bytes).
///  - kF16:  frozen dense weights are rounded to IEEE half precision and
///           materialized feeds are stored as f16 (0.5x the f32 bytes);
///           arithmetic stays f32 (software f16 — storage precision, not a
///           hardware compute path).
enum class QuantMode { kOff, kInt8, kF16 };

/// Process-wide mode, initialized from NAUTILUS_QUANT ("off" | "int8" |
/// "f16", default off) on first use; SetGlobalQuantMode (the --quant CLI
/// flag) overrides it.
QuantMode GlobalQuantMode();
void SetGlobalQuantMode(QuantMode mode);

/// Parses "off" / "int8" / "f16"; returns false on anything else.
bool ParseQuantMode(const std::string& name, QuantMode* out);
const char* QuantModeName(QuantMode mode);

/// RAII mode override for tests and benches.
class ScopedQuantMode {
 public:
  explicit ScopedQuantMode(QuantMode mode) : prev_(GlobalQuantMode()) {
    SetGlobalQuantMode(mode);
  }
  ~ScopedQuantMode() { SetGlobalQuantMode(prev_); }
  ScopedQuantMode(const ScopedQuantMode&) = delete;
  ScopedQuantMode& operator=(const ScopedQuantMode&) = delete;

 private:
  QuantMode prev_;
};

// ---------------------------------------------------------------------------
// IEEE 754 half-precision conversion (software, round-to-nearest-even)
// ---------------------------------------------------------------------------

/// f32 -> f16 bits. Overflow saturates to +/-inf, underflow flushes through
/// the f16 subnormal range to +/-0; NaN payloads are preserved (truncated).
uint16_t F32ToF16(float f);

/// f16 bits -> f32 (exact: every f16 value is representable in f32).
float F16ToF32(uint16_t h);

// ---------------------------------------------------------------------------
// Absmax int8 quantization
// ---------------------------------------------------------------------------
//
// Symmetric absmax scheme: q = round(x * 127 / absmax), clamped to
// [-127, 127] (-128 is never produced, so |q| <= 127 keeps int16 pair
// products exact in the packed GEMM). Dequant is x~ = q * scale with
// scale = absmax / 127; the round-trip error is bounded by scale / 2.
// An all-zero (or absmax == 0) row quantizes to zeros with scale 0.

/// Quantizes `n` contiguous floats; returns the scale. `dst` holds n int8s.
float QuantizeRowAbsMax(const float* src, int64_t n, int8_t* dst);

/// Inverse: dst[i] = q[i] * scale.
void DequantizeRow(const int8_t* q, int64_t n, float scale, float* dst);

/// Per-output-channel quantized weight matrix: `q` is [rows, cols]
/// row-major int8, `scales[j]` is the absmax scale of column j. This is the
/// layout QGemmInt8 consumes for its B operand.
struct QuantizedMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> q;
  std::vector<float> scales;
};

/// Quantizes a row-major [rows, cols] f32 matrix column-wise (one scale per
/// output channel).
QuantizedMatrix QuantizePerColumn(const float* w, int64_t rows, int64_t cols);

}  // namespace quant
}  // namespace nautilus

#endif  // NAUTILUS_TENSOR_QUANT_H_
