// AVX2 int8 micro-kernel, isolated in its own translation unit so only this
// file is built with -mavx2 -mfma (same arrangement as gemm_avx2.cc); the
// caller (qgemm.cc) selects the kernel at runtime via cpuid.
#include "nautilus/tensor/qgemm_kernels.h"

#ifdef NAUTILUS_HAVE_AVX2_KERNEL

#include <immintrin.h>

#include <cstring>

namespace nautilus {
namespace ops {
namespace internal {

void QMicroKernelAvx2(int64_t kc2, const int16_t* ap, const int16_t* bp,
                      int32_t* c, int64_t ldc, bool accumulate) {
  // 6x16 int32 tile = 12 ymm accumulators; 2 ymm for the interleaved B pair
  // row and 1 for the broadcast A pair leave one register spare.
  __m256i acc0[kQMR];
  __m256i acc1[kQMR];
  if (accumulate) {
    for (int64_t i = 0; i < kQMR; ++i) {
      acc0[i] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c + i * ldc));
      acc1[i] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c + i * ldc + 8));
    }
  } else {
    for (int64_t i = 0; i < kQMR; ++i) {
      acc0[i] = _mm256_setzero_si256();
      acc1[i] = _mm256_setzero_si256();
    }
  }
  for (int64_t p = 0; p < kc2; ++p) {
    // B panel step p holds kQNR interleaved int16 pairs = 32 int16s; the
    // first ymm covers output columns 0..7, the second 8..15.
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * kQNR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p * kQNR * 2 + 16));
    const int16_t* ak = ap + p * kQMR * 2;
    for (int64_t i = 0; i < kQMR; ++i) {
      // Broadcast row i's int16 k-pair as one 32-bit lane; madd_epi16 then
      // computes a0*b0 + a1*b1 per lane — exact, since |q| <= 127 keeps
      // every pair product within int16*int16 range (no saturation).
      int32_t pair;
      std::memcpy(&pair, ak + i * 2, sizeof(pair));
      const __m256i ai = _mm256_set1_epi32(pair);
      acc0[i] = _mm256_add_epi32(acc0[i], _mm256_madd_epi16(ai, b0));
      acc1[i] = _mm256_add_epi32(acc1[i], _mm256_madd_epi16(ai, b1));
    }
  }
  for (int64_t i = 0; i < kQMR; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * ldc), acc0[i]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i * ldc + 8), acc1[i]);
  }
}

void PackBPairsAvx2(const int8_t* r0, const int8_t* r1, int16_t* dst) {
  // Sign-extend 16 int8s from each B row to int16, then interleave so that
  // dst holds kQNR k-pairs: a0 b0 a1 b1 ... a15 b15. unpacklo/hi interleave
  // within 128-bit lanes, so one cross-lane permute reassembles the order.
  const __m256i x0 = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0)));
  const __m256i x1 = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1)));
  const __m256i lo = _mm256_unpacklo_epi16(x0, x1);
  const __m256i hi = _mm256_unpackhi_epi16(x0, x1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_permute2x128_si256(lo, hi, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 16),
                      _mm256_permute2x128_si256(lo, hi, 0x31));
}

void PackARowPairsAvx2(const int8_t* arow, int64_t kc, int16_t* dst) {
  // One A row's k-run becomes sign-extended int16 pairs written at a stride
  // of kQMR pairs (the row's slot inside each packed panel step). Eight
  // pairs at a time: 16 int8s sign-extend to one ymm whose int32 lanes ARE
  // the pairs; they bounce through an L1 scratch into the strided slots.
  int64_t p2 = 0;
  alignas(32) int32_t pairs[8];
  for (; 2 * p2 + 16 <= kc; p2 += 8) {
    const __m256i v = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + 2 * p2)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(pairs), v);
    for (int t = 0; t < 8; ++t) {
      std::memcpy(dst + (p2 + t) * kQMR * 2, &pairs[t], sizeof(int32_t));
    }
  }
  for (; p2 < (kc + 1) / 2; ++p2) {
    int16_t* slot = dst + p2 * kQMR * 2;
    slot[0] = arow[2 * p2];
    slot[1] = (2 * p2 + 1) < kc ? int16_t{arow[2 * p2 + 1]} : int16_t{0};
  }
}

void DequantRow16Avx2(const int32_t* ci, float sa, const float* b_scales,
                      const float* bias, bool relu, float* crow, float* prow) {
  // Same IEEE expression per element as the scalar epilogue, in the same
  // order — float(acc) * sa * b_scale, then + bias — so the vector path is
  // bit-identical. max_ps(z, 0) matches scalar relu exactly too: for z=-0 it
  // returns the second operand (+0), just like (z > 0 ? z : 0.0f).
  const __m256 vsa = _mm256_set1_ps(sa);
  __m256 z0 = _mm256_cvtepi32_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ci)));
  __m256 z1 = _mm256_cvtepi32_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ci + 8)));
  z0 = _mm256_mul_ps(_mm256_mul_ps(z0, vsa), _mm256_loadu_ps(b_scales));
  z1 = _mm256_mul_ps(_mm256_mul_ps(z1, vsa), _mm256_loadu_ps(b_scales + 8));
  if (bias != nullptr) {
    z0 = _mm256_add_ps(z0, _mm256_loadu_ps(bias));
    z1 = _mm256_add_ps(z1, _mm256_loadu_ps(bias + 8));
  }
  if (prow != nullptr) {
    _mm256_storeu_ps(prow, z0);
    _mm256_storeu_ps(prow + 8, z1);
  }
  if (relu) {
    const __m256 zero = _mm256_setzero_ps();
    z0 = _mm256_max_ps(z0, zero);
    z1 = _mm256_max_ps(z1, zero);
  }
  _mm256_storeu_ps(crow, z0);
  _mm256_storeu_ps(crow + 8, z1);
}

}  // namespace internal
}  // namespace ops
}  // namespace nautilus

#endif  // NAUTILUS_HAVE_AVX2_KERNEL
