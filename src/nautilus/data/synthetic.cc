#include "nautilus/data/synthetic.h"

#include <algorithm>

#include "nautilus/graph/executor.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace data {

LabeledDataset GenerateTextPool(const zoo::BertLikeModel& encoder,
                                int64_t num_records, int64_t num_classes,
                                uint64_t seed, double label_noise) {
  const zoo::BertConfig& cfg = encoder.config();
  Rng rng(seed);

  // Random token sequences.
  Tensor ids(Shape({num_records, cfg.seq_len}));
  for (int64_t i = 0; i < ids.NumElements(); ++i) {
    ids.at(i) = static_cast<float>(rng.UniformInt(cfg.vocab));
  }

  // Hidden teacher: random linear head over the [CLS] feature of the last
  // hidden layer, evaluated in batches through the real encoder.
  Tensor teacher =
      Tensor::Randn(Shape({cfg.hidden, num_classes}), &rng, 1.0f);
  graph::ModelGraph src = encoder.BuildSourceGraph();
  graph::Executor ex(&src);

  std::vector<int32_t> labels(static_cast<size_t>(num_records), 0);
  const int64_t kBatch = 64;
  for (int64_t begin = 0; begin < num_records; begin += kBatch) {
    const int64_t end = std::min(num_records, begin + kBatch);
    Tensor batch = ids.SliceRows(begin, end);
    ex.Forward({{src.input_ids()[0], batch}}, /*training=*/false);
    Tensor features =
        ops::SelectSeqPosition(ex.Output(src.output_ids()[0]), 0);
    Tensor logits = ops::MatMul(features, teacher);
    for (int64_t i = 0; i < end - begin; ++i) {
      int64_t best = 0;
      for (int64_t c = 1; c < num_classes; ++c) {
        if (logits.at(i * num_classes + c) > logits.at(i * num_classes + best)) {
          best = c;
        }
      }
      if (rng.Uniform() < label_noise) {
        best = rng.UniformInt(num_classes);
      }
      labels[static_cast<size_t>(begin + i)] = static_cast<int32_t>(best);
    }
  }
  return LabeledDataset(std::move(ids), std::move(labels));
}

LabeledDataset GenerateImagePool(const zoo::ResNetConfig& config,
                                 int64_t num_records, int64_t num_classes,
                                 uint64_t seed, float noise_stddev) {
  Rng rng(seed);
  const Shape record_shape(
      {config.in_channels, config.image_size, config.image_size});
  const int64_t record_elems = record_shape.NumElements();

  // Class prototypes: smooth random patterns with unit scale.
  std::vector<Tensor> prototypes;
  prototypes.reserve(static_cast<size_t>(num_classes));
  for (int64_t c = 0; c < num_classes; ++c) {
    prototypes.push_back(Tensor::Randn(record_shape, &rng, 1.0f));
  }

  Tensor images(Shape({num_records, config.in_channels, config.image_size,
                       config.image_size}));
  std::vector<int32_t> labels(static_cast<size_t>(num_records), 0);
  for (int64_t i = 0; i < num_records; ++i) {
    const int64_t label = rng.UniformInt(num_classes);
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(label);
    const Tensor& proto = prototypes[static_cast<size_t>(label)];
    float* dst = images.data() + i * record_elems;
    for (int64_t j = 0; j < record_elems; ++j) {
      dst[j] = proto.at(j) + rng.Normal(noise_stddev);
    }
  }
  return LabeledDataset(std::move(images), std::move(labels));
}

LabelingSimulator::LabelingSimulator(LabeledDataset pool,
                                     int64_t records_per_cycle,
                                     double train_fraction)
    : pool_(std::move(pool)),
      records_per_cycle_(records_per_cycle),
      train_fraction_(train_fraction) {
  NAUTILUS_CHECK_GT(records_per_cycle_, 0);
  NAUTILUS_CHECK_GT(train_fraction_, 0.0);
  NAUTILUS_CHECK_LT(train_fraction_, 1.0);
}

LabelingSimulator::CycleBatch LabelingSimulator::NextCycle() {
  NAUTILUS_CHECK(HasNextCycle()) << "labeling pool exhausted";
  const int64_t end = std::min(pool_.size(), offset_ + records_per_cycle_);
  LabeledDataset batch = pool_.Slice(offset_, end);
  offset_ = end;
  ++cycles_;
  const int64_t train_count = static_cast<int64_t>(
      static_cast<double>(batch.size()) * train_fraction_);
  CycleBatch out;
  out.train = batch.Slice(0, train_count);
  out.valid = batch.Slice(train_count, batch.size());
  return out;
}

}  // namespace data
}  // namespace nautilus
