#ifndef NAUTILUS_DATA_AUGMENTATION_H_
#define NAUTILUS_DATA_AUGMENTATION_H_

#include <cstdint>

#include "nautilus/data/dataset.h"

namespace nautilus {
namespace data {

/// Materialize-then-train data augmentation, per Section 2.5 of the
/// Nautilus paper: on-the-fly random augmentation would make frozen-layer
/// outputs non-deterministic (and thus non-materializable), so Nautilus
/// supports augmentation by materializing an augmented dataset up front and
/// treating each augmented copy as an ordinary record.

/// Returns the pool plus `copies` augmented duplicates; each duplicate
/// independently replaces tokens with probability `replace_prob` by uniform
/// random vocabulary entries (labels preserved).
LabeledDataset AugmentTextPool(const LabeledDataset& pool, int copies,
                               double replace_prob, int64_t vocab,
                               uint64_t seed);

/// Returns the pool plus `copies` augmented duplicates; each duplicate is
/// horizontally flipped with probability 0.5 and jittered with Gaussian
/// pixel noise (labels preserved). Inputs must be [n, c, h, w].
LabeledDataset AugmentImagePool(const LabeledDataset& pool, int copies,
                                float noise_stddev, uint64_t seed);

}  // namespace data
}  // namespace nautilus

#endif  // NAUTILUS_DATA_AUGMENTATION_H_
