#ifndef NAUTILUS_DATA_DATASET_H_
#define NAUTILUS_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "nautilus/tensor/tensor.h"
#include "nautilus/util/logging.h"

namespace nautilus {
namespace data {

/// A labeled dataset: one input tensor (batch-major) plus integer class
/// labels. Supports appending, which is how evolving snapshots grow
/// (D_{k+1} = D_k ∪ ΔD+_k, Equation 4 of the Nautilus paper).
class LabeledDataset {
 public:
  LabeledDataset() = default;
  LabeledDataset(Tensor inputs, std::vector<int32_t> labels)
      : inputs_(std::move(inputs)), labels_(std::move(labels)) {
    NAUTILUS_CHECK_EQ(inputs_.shape().dim(0),
                      static_cast<int64_t>(labels_.size()));
  }

  int64_t size() const { return static_cast<int64_t>(labels_.size()); }
  bool empty() const { return labels_.empty(); }

  const Tensor& inputs() const { return inputs_; }
  const std::vector<int32_t>& labels() const { return labels_; }

  /// Appends another dataset's records.
  void Append(const LabeledDataset& other) {
    if (other.empty()) return;
    inputs_.AppendRows(other.inputs_);
    labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  }

  /// Records [begin, end).
  LabeledDataset Slice(int64_t begin, int64_t end) const {
    NAUTILUS_CHECK_LE(end, size());
    return LabeledDataset(
        inputs_.SliceRows(begin, end),
        std::vector<int32_t>(labels_.begin() + begin, labels_.begin() + end));
  }

  /// Records selected by index (mini-batch assembly).
  LabeledDataset Gather(const std::vector<int64_t>& rows) const {
    std::vector<int32_t> labels;
    labels.reserve(rows.size());
    for (int64_t r : rows) {
      NAUTILUS_CHECK_LT(r, size());
      labels.push_back(labels_[static_cast<size_t>(r)]);
    }
    return LabeledDataset(inputs_.GatherRows(rows), std::move(labels));
  }

 private:
  Tensor inputs_;
  std::vector<int32_t> labels_;
};

/// The evolving train/validation snapshots a data-labeling loop produces:
/// each cycle appends a freshly labeled batch to both splits.
class EvolvingDataset {
 public:
  void AddCycle(const LabeledDataset& train_batch,
                const LabeledDataset& valid_batch) {
    train_.Append(train_batch);
    valid_.Append(valid_batch);
    ++cycles_;
  }

  const LabeledDataset& train() const { return train_; }
  const LabeledDataset& valid() const { return valid_; }
  int cycles() const { return cycles_; }

  /// Replaces the snapshots wholesale (session resume).
  void Restore(LabeledDataset train, LabeledDataset valid, int cycles) {
    train_ = std::move(train);
    valid_ = std::move(valid);
    cycles_ = cycles;
  }

 private:
  LabeledDataset train_;
  LabeledDataset valid_;
  int cycles_ = 0;
};

}  // namespace data
}  // namespace nautilus

#endif  // NAUTILUS_DATA_DATASET_H_
