#ifndef NAUTILUS_DATA_SYNTHETIC_H_
#define NAUTILUS_DATA_SYNTHETIC_H_

#include <cstdint>

#include "nautilus/data/dataset.h"
#include "nautilus/zoo/bert_like.h"
#include "nautilus/zoo/resnet_like.h"

namespace nautilus {
namespace data {

/// Synthetic stand-ins for the paper's CoNLL-2003 and Malaria datasets.
/// Labels come from a hidden *teacher*: a random linear head over the frozen
/// pretrained features (text) or a planted class pattern (images). Both
/// guarantee a learnable task whose accuracy improves with more labeled
/// data, which is all the learning-curve experiments (Figure 7) require.

/// Token-sequence classification pool labeled by a teacher head on the
/// encoder's [CLS] feature of the last hidden layer. `label_noise` flips
/// that fraction of labels uniformly (keeps accuracy ceilings below 100%).
LabeledDataset GenerateTextPool(const zoo::BertLikeModel& encoder,
                                int64_t num_records, int64_t num_classes,
                                uint64_t seed, double label_noise = 0.1);

/// Image classification pool: each class has a random spatial prototype;
/// records are prototype + Gaussian noise (a Malaria-like binary screen when
/// num_classes == 2).
LabeledDataset GenerateImagePool(const zoo::ResNetConfig& config,
                                 int64_t num_records, int64_t num_classes,
                                 uint64_t seed, float noise_stddev = 1.0f);

/// Replays a data-labeling process over a fixed pool: each cycle releases
/// the next `records_per_cycle` records, split `train_fraction` /
/// (1 - train_fraction) into train/valid, mirroring the paper's 500-record
/// cycles with 400/100 splits. Labeling latency is modeled, not slept.
class LabelingSimulator {
 public:
  LabelingSimulator(LabeledDataset pool, int64_t records_per_cycle,
                    double train_fraction);

  bool HasNextCycle() const { return offset_ < pool_.size(); }
  int cycles_released() const { return cycles_; }

  struct CycleBatch {
    LabeledDataset train;
    LabeledDataset valid;
  };

  /// Releases the next cycle's labeled batch.
  CycleBatch NextCycle();

  /// Seconds a human labeler would take for one cycle at the given rate.
  double CycleLabelingSeconds(double seconds_per_label) const {
    return static_cast<double>(records_per_cycle_) * seconds_per_label;
  }

 private:
  LabeledDataset pool_;
  int64_t records_per_cycle_;
  double train_fraction_;
  int64_t offset_ = 0;
  int cycles_ = 0;
};

}  // namespace data
}  // namespace nautilus

#endif  // NAUTILUS_DATA_SYNTHETIC_H_
