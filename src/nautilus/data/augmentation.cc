#include "nautilus/data/augmentation.h"

#include "nautilus/util/random.h"

namespace nautilus {
namespace data {

LabeledDataset AugmentTextPool(const LabeledDataset& pool, int copies,
                               double replace_prob, int64_t vocab,
                               uint64_t seed) {
  NAUTILUS_CHECK_GE(copies, 0);
  Rng rng(seed);
  LabeledDataset out = pool;
  for (int c = 0; c < copies; ++c) {
    Tensor ids = pool.inputs();
    for (int64_t i = 0; i < ids.NumElements(); ++i) {
      if (rng.Uniform() < replace_prob) {
        ids.at(i) = static_cast<float>(rng.UniformInt(vocab));
      }
    }
    out.Append(LabeledDataset(std::move(ids), pool.labels()));
  }
  return out;
}

LabeledDataset AugmentImagePool(const LabeledDataset& pool, int copies,
                                float noise_stddev, uint64_t seed) {
  NAUTILUS_CHECK_GE(copies, 0);
  const Shape& shape = pool.inputs().shape();
  NAUTILUS_CHECK_EQ(shape.rank(), 4);
  const int64_t n = shape.dim(0);
  const int64_t c = shape.dim(1);
  const int64_t h = shape.dim(2);
  const int64_t w = shape.dim(3);
  Rng rng(seed);
  LabeledDataset out = pool;
  for (int copy = 0; copy < copies; ++copy) {
    Tensor images = pool.inputs();
    for (int64_t i = 0; i < n; ++i) {
      const bool flip = rng.Uniform() < 0.5;
      float* record = images.data() + i * c * h * w;
      if (flip) {
        for (int64_t ch = 0; ch < c; ++ch) {
          float* plane = record + ch * h * w;
          for (int64_t y = 0; y < h; ++y) {
            float* row = plane + y * w;
            for (int64_t x = 0; x < w / 2; ++x) {
              std::swap(row[x], row[w - 1 - x]);
            }
          }
        }
      }
      for (int64_t j = 0; j < c * h * w; ++j) {
        record[j] += rng.Normal(noise_stddev);
      }
    }
    out.Append(LabeledDataset(std::move(images), pool.labels()));
  }
  return out;
}

}  // namespace data
}  // namespace nautilus
