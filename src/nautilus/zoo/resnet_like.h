#ifndef NAUTILUS_ZOO_RESNET_LIKE_H_
#define NAUTILUS_ZOO_RESNET_LIKE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/conv.h"

namespace nautilus {
namespace zoo {

/// Configuration of the ResNet-like residual CNN. PaperScale matches
/// ResNet-50 (stem + [3,4,6,3] bottleneck blocks), the source model of the
/// paper's FTU workload on the Malaria dataset, whose thin-blood-smear cell
/// crops average ~130x130 pixels (we use 128).
struct ResNetConfig {
  int64_t in_channels = 3;
  int64_t image_size = 32;
  int64_t stem_channels = 8;
  std::vector<int64_t> blocks_per_stage = {1, 1, 1, 1};

  static ResNetConfig PaperScale() {
    return {.in_channels = 3,
            .image_size = 128,
            .stem_channels = 64,
            .blocks_per_stage = {3, 4, 6, 3}};
  }
  static ResNetConfig MiniScale() {
    return {.in_channels = 3,
            .image_size = 16,
            .stem_channels = 4,
            .blocks_per_stage = {1, 1, 1, 1}};
  }

  int64_t TotalBlocks() const {
    int64_t n = 0;
    for (int64_t b : blocks_per_stage) n += b;
    return n;
  }
};

/// A "pretrained" ResNet-like CNN with shared stem/block instances, standing
/// in for a model-zoo ResNet-50 checkpoint.
class ResNetLikeModel {
 public:
  ResNetLikeModel(const ResNetConfig& config, uint64_t seed);

  const ResNetConfig& config() const { return config_; }
  const std::shared_ptr<nn::InputLayer>& input() const { return input_; }
  const std::shared_ptr<nn::ConvBlockLayer>& stem() const { return stem_; }
  const std::shared_ptr<nn::MaxPoolLayer>& stem_pool() const {
    return stem_pool_;
  }
  const std::vector<std::shared_ptr<nn::ResidualBlockLayer>>& blocks() const {
    return blocks_;
  }
  /// Output channels of the final block (the feature width fed to the head).
  int64_t feature_channels() const { return feature_channels_; }

  graph::ModelGraph BuildSourceGraph() const;

 private:
  ResNetConfig config_;
  std::shared_ptr<nn::InputLayer> input_;
  std::shared_ptr<nn::ConvBlockLayer> stem_;
  std::shared_ptr<nn::MaxPoolLayer> stem_pool_;
  std::vector<std::shared_ptr<nn::ResidualBlockLayer>> blocks_;
  int64_t feature_channels_ = 0;
};

/// Fine-tuning adaptation (the paper's FTU workload): the top `num_unfrozen`
/// residual blocks are unfrozen (cloned); a global-average-pool + dense
/// classifier head is added.
graph::ModelGraph BuildResNetFineTuneModel(const ResNetLikeModel& source,
                                           int64_t num_unfrozen,
                                           int64_t num_classes,
                                           const std::string& name,
                                           uint64_t seed);

/// Feature transfer on the CNN: everything frozen, head trained on pooled
/// features (used by examples and extension tests).
graph::ModelGraph BuildResNetFeatureTransferModel(const ResNetLikeModel& source,
                                                  int64_t num_classes,
                                                  const std::string& name,
                                                  uint64_t seed);

}  // namespace zoo
}  // namespace nautilus

#endif  // NAUTILUS_ZOO_RESNET_LIKE_H_
