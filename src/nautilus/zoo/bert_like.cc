#include "nautilus/zoo/bert_like.h"

#include "nautilus/nn/combine.h"
#include "nautilus/util/logging.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace zoo {

BertLikeModel::BertLikeModel(const BertConfig& config, uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  input_ = std::make_shared<nn::InputLayer>("tokens",
                                            Shape({config.seq_len}));
  embedding_ = std::make_shared<nn::EmbeddingBlockLayer>(
      "embedding", config.vocab, config.seq_len, config.hidden, &rng);
  blocks_.reserve(static_cast<size_t>(config.num_blocks));
  for (int64_t i = 0; i < config.num_blocks; ++i) {
    blocks_.push_back(std::make_shared<nn::TransformerBlockLayer>(
        "block" + std::to_string(i), config.hidden, config.heads, config.ffn,
        &rng));
  }
}

graph::ModelGraph BertLikeModel::BuildSourceGraph() const {
  graph::ModelGraph g("bert_src");
  int prev = g.AddInput(input_);
  prev = g.AddNode(embedding_, {prev}, /*frozen=*/true);
  for (const auto& block : blocks_) {
    prev = g.AddNode(block, {prev}, /*frozen=*/true);
  }
  g.MarkOutput(prev);
  g.Validate();
  return g;
}

const char* BertFeatureName(BertFeature f) {
  switch (f) {
    case BertFeature::kEmbedding:
      return "embedding";
    case BertFeature::kSecondLastHidden:
      return "second_last_hidden";
    case BertFeature::kLastHidden:
      return "last_hidden";
    case BertFeature::kSumLast4:
      return "sum_last_4";
    case BertFeature::kConcatLast4:
      return "concat_last_4";
    case BertFeature::kSumAllHidden:
      return "sum_all_hidden";
  }
  return "?";
}

namespace {

// Adds the frozen pretrained stack (embedding + all blocks) to `g`, sharing
// the source layer instances, and returns the node ids: [embedding, block0,
// block1, ...].
std::vector<int> AddFrozenStack(const BertLikeModel& source,
                                graph::ModelGraph* g, int input_id,
                                int64_t num_blocks) {
  std::vector<int> ids;
  int prev = g->AddNode(source.embedding(), {input_id}, /*frozen=*/true);
  ids.push_back(prev);
  for (int64_t i = 0; i < num_blocks; ++i) {
    prev = g->AddNode(source.blocks()[static_cast<size_t>(i)], {prev},
                      /*frozen=*/true);
    ids.push_back(prev);
  }
  return ids;
}

// Adds the trainable classification head: SelectToken(0) -> Dense.
int AddClassifierHead(graph::ModelGraph* g, int features_id, int64_t width,
                      int64_t num_classes, const std::string& prefix,
                      Rng* rng) {
  int cls = g->AddNode(
      std::make_shared<nn::SelectTokenLayer>(prefix + ".cls", 0),
      {features_id}, /*frozen=*/false);
  int logits = g->AddNode(
      std::make_shared<nn::DenseLayer>(prefix + ".classifier", width,
                                       num_classes, nn::Activation::kNone,
                                       rng),
      {cls}, /*frozen=*/false);
  return logits;
}

}  // namespace

graph::ModelGraph BuildBertFeatureTransferModel(const BertLikeModel& source,
                                                BertFeature feature,
                                                int64_t num_classes,
                                                const std::string& name,
                                                uint64_t seed) {
  const BertConfig& cfg = source.config();
  NAUTILUS_CHECK_GE(cfg.num_blocks, 4)
      << "feature strategies need >= 4 blocks";
  Rng rng(seed);
  graph::ModelGraph g(name);
  const int input_id = g.AddInput(source.input());
  const std::vector<int> stack =
      AddFrozenStack(source, &g, input_id, cfg.num_blocks);
  const int emb_id = stack[0];
  auto block_id = [&](int64_t i) {  // i-th block, 0-based
    return stack[static_cast<size_t>(i + 1)];
  };
  const int64_t n = cfg.num_blocks;

  int features = -1;
  int64_t width = cfg.hidden;
  switch (feature) {
    case BertFeature::kEmbedding:
      features = emb_id;
      break;
    case BertFeature::kSecondLastHidden:
      features = block_id(n - 2);
      break;
    case BertFeature::kLastHidden:
      features = block_id(n - 1);
      break;
    case BertFeature::kSumLast4: {
      features = g.AddNode(
          std::make_shared<nn::AddLayer>(name + ".sum_last4"),
          {block_id(n - 4), block_id(n - 3), block_id(n - 2), block_id(n - 1)},
          /*frozen=*/true);
      break;
    }
    case BertFeature::kConcatLast4: {
      features = g.AddNode(
          std::make_shared<nn::ConcatLayer>(name + ".concat_last4"),
          {block_id(n - 4), block_id(n - 3), block_id(n - 2), block_id(n - 1)},
          /*frozen=*/true);
      width = 4 * cfg.hidden;
      break;
    }
    case BertFeature::kSumAllHidden: {
      std::vector<int> parents;
      for (int64_t i = 0; i < n; ++i) parents.push_back(block_id(i));
      features =
          g.AddNode(std::make_shared<nn::AddLayer>(name + ".sum_all"),
                    std::move(parents), /*frozen=*/true);
      break;
    }
  }

  // New trainable transformer block over the extracted features, as in the
  // paper's FTR workloads. Wide feature combinations (concat) are first
  // projected back to the encoder width so the added block stays standard
  // sized, keeping the trainable compute a small fraction of the frozen
  // encoder (which is what makes feature transfer FLOPs-light).
  int block_input = features;
  if (width != cfg.hidden) {
    block_input = g.AddNode(
        std::make_shared<nn::DenseLayer>(name + ".proj", width, cfg.hidden,
                                         nn::Activation::kGelu, &rng),
        {features}, /*frozen=*/false);
  }
  const int new_block = g.AddNode(
      std::make_shared<nn::TransformerBlockLayer>(
          name + ".new_block", cfg.hidden, cfg.heads, cfg.ffn, &rng),
      {block_input}, /*frozen=*/false);
  const int logits =
      AddClassifierHead(&g, new_block, cfg.hidden, num_classes, name, &rng);
  g.MarkOutput(logits);
  g.Validate();
  return g;
}

graph::ModelGraph BuildBertAdapterModel(const BertLikeModel& source,
                                        int64_t num_adapted,
                                        int64_t num_classes,
                                        const std::string& name,
                                        uint64_t seed) {
  const BertConfig& cfg = source.config();
  NAUTILUS_CHECK_GE(num_adapted, 1);
  NAUTILUS_CHECK_LE(num_adapted, cfg.num_blocks);
  Rng rng(seed);
  graph::ModelGraph g(name);
  const int input_id = g.AddInput(source.input());
  int prev = g.AddNode(source.embedding(), {input_id}, /*frozen=*/true);
  const int64_t first_adapted = cfg.num_blocks - num_adapted;
  for (int64_t i = 0; i < cfg.num_blocks; ++i) {
    prev = g.AddNode(source.blocks()[static_cast<size_t>(i)], {prev},
                     /*frozen=*/true);
    if (i >= first_adapted) {
      prev = g.AddNode(
          std::make_shared<nn::AdapterLayer>(
              name + ".adapter" + std::to_string(i), cfg.hidden,
              /*bottleneck=*/std::max<int64_t>(cfg.hidden / 8, 2), &rng),
          {prev}, /*frozen=*/false);
    }
  }
  const int logits =
      AddClassifierHead(&g, prev, cfg.hidden, num_classes, name, &rng);
  g.MarkOutput(logits);
  g.Validate();
  return g;
}

graph::ModelGraph BuildBertFineTuneModel(const BertLikeModel& source,
                                         int64_t num_unfrozen,
                                         int64_t num_classes,
                                         const std::string& name,
                                         uint64_t seed) {
  const BertConfig& cfg = source.config();
  NAUTILUS_CHECK_GE(num_unfrozen, 0);
  NAUTILUS_CHECK_LE(num_unfrozen, cfg.num_blocks);
  Rng rng(seed);
  graph::ModelGraph g(name);
  const int input_id = g.AddInput(source.input());
  int prev = g.AddNode(source.embedding(), {input_id}, /*frozen=*/true);
  const int64_t first_unfrozen = cfg.num_blocks - num_unfrozen;
  for (int64_t i = 0; i < cfg.num_blocks; ++i) {
    if (i < first_unfrozen) {
      prev = g.AddNode(source.blocks()[static_cast<size_t>(i)], {prev},
                       /*frozen=*/true);
    } else {
      // Cloned so this candidate trains its own copy of the weights.
      prev = g.AddNode(source.blocks()[static_cast<size_t>(i)]->Clone(),
                       {prev}, /*frozen=*/false);
    }
  }
  const int logits =
      AddClassifierHead(&g, prev, cfg.hidden, num_classes, name, &rng);
  g.MarkOutput(logits);
  g.Validate();
  return g;
}

}  // namespace zoo
}  // namespace nautilus
