#include "nautilus/zoo/resnet_like.h"

#include "nautilus/nn/basic.h"
#include "nautilus/util/logging.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace zoo {

ResNetLikeModel::ResNetLikeModel(const ResNetConfig& config, uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  input_ = std::make_shared<nn::InputLayer>(
      "image",
      Shape({config.in_channels, config.image_size, config.image_size}));
  // Stem: strided conv + 2x2 max pool, as in ResNet (7x7 at paper scale is
  // approximated with a 3x3; the FLOP profile is set by channel counts).
  stem_ = std::make_shared<nn::ConvBlockLayer>(
      "stem", config.in_channels, config.stem_channels, /*kernel=*/3,
      /*stride=*/2, /*padding=*/1, /*relu=*/true, &rng);
  stem_pool_ = std::make_shared<nn::MaxPoolLayer>("stem_pool", 2);

  int64_t in_ch = config.stem_channels;
  int block_index = 0;
  for (size_t stage = 0; stage < config.blocks_per_stage.size(); ++stage) {
    const int64_t mid = config.stem_channels << stage;
    const int64_t out = mid * 4;
    for (int64_t b = 0; b < config.blocks_per_stage[stage]; ++b) {
      // First block of stages > 0 downsamples spatially.
      const int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
      blocks_.push_back(std::make_shared<nn::ResidualBlockLayer>(
          "res" + std::to_string(block_index++), in_ch, mid, out, stride,
          &rng));
      in_ch = out;
    }
  }
  feature_channels_ = in_ch;
}

graph::ModelGraph ResNetLikeModel::BuildSourceGraph() const {
  graph::ModelGraph g("resnet_src");
  int prev = g.AddInput(input_);
  prev = g.AddNode(stem_, {prev}, /*frozen=*/true);
  prev = g.AddNode(stem_pool_, {prev}, /*frozen=*/true);
  for (const auto& block : blocks_) {
    prev = g.AddNode(block, {prev}, /*frozen=*/true);
  }
  g.MarkOutput(prev);
  g.Validate();
  return g;
}

namespace {

int AddResNetHead(graph::ModelGraph* g, int features_id, int64_t channels,
                  int64_t num_classes, const std::string& prefix, Rng* rng) {
  int pooled = g->AddNode(
      std::make_shared<nn::GlobalAvgPoolLayer>(prefix + ".gap"),
      {features_id}, /*frozen=*/false);
  return g->AddNode(
      std::make_shared<nn::DenseLayer>(prefix + ".classifier", channels,
                                       num_classes, nn::Activation::kNone,
                                       rng),
      {pooled}, /*frozen=*/false);
}

}  // namespace

graph::ModelGraph BuildResNetFineTuneModel(const ResNetLikeModel& source,
                                           int64_t num_unfrozen,
                                           int64_t num_classes,
                                           const std::string& name,
                                           uint64_t seed) {
  const int64_t total = source.config().TotalBlocks();
  NAUTILUS_CHECK_GE(num_unfrozen, 0);
  NAUTILUS_CHECK_LE(num_unfrozen, total);
  Rng rng(seed);
  graph::ModelGraph g(name);
  int prev = g.AddInput(source.input());
  prev = g.AddNode(source.stem(), {prev}, /*frozen=*/true);
  prev = g.AddNode(source.stem_pool(), {prev}, /*frozen=*/true);
  const int64_t first_unfrozen = total - num_unfrozen;
  for (int64_t i = 0; i < total; ++i) {
    if (i < first_unfrozen) {
      prev = g.AddNode(source.blocks()[static_cast<size_t>(i)], {prev},
                       /*frozen=*/true);
    } else {
      prev = g.AddNode(source.blocks()[static_cast<size_t>(i)]->Clone(),
                       {prev}, /*frozen=*/false);
    }
  }
  const int logits = AddResNetHead(&g, prev, source.feature_channels(),
                                   num_classes, name, &rng);
  g.MarkOutput(logits);
  g.Validate();
  return g;
}

graph::ModelGraph BuildResNetFeatureTransferModel(const ResNetLikeModel& source,
                                                  int64_t num_classes,
                                                  const std::string& name,
                                                  uint64_t seed) {
  return BuildResNetFineTuneModel(source, /*num_unfrozen=*/0, num_classes,
                                  name, seed);
}

}  // namespace zoo
}  // namespace nautilus
