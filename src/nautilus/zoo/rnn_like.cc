#include "nautilus/zoo/rnn_like.h"

#include "nautilus/nn/basic.h"
#include "nautilus/nn/combine.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace zoo {

RnnLikeModel::RnnLikeModel(const RnnConfig& config, uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  input_ = std::make_shared<nn::InputLayer>("rnn_tokens",
                                            Shape({config.seq_len}));
  embedding_ = std::make_shared<nn::EmbeddingBlockLayer>(
      "rnn_embedding", config.vocab, config.seq_len, config.embed_dim, &rng);
  cell_ = std::make_shared<nn::RnnCellLayer>("rnn_cell", config.embed_dim,
                                             config.hidden, &rng);
  h0_ = std::make_shared<nn::ZeroStateLayer>("rnn_h0", config.hidden);
  for (int64_t t = 0; t < config.seq_len; ++t) {
    selectors_.push_back(std::make_shared<nn::SelectTokenLayer>(
        "rnn_x" + std::to_string(t), t));
  }
}

namespace {

// Unrolls the shared cell over the embedded sequence; returns the node id
// of the final hidden state. All added nodes are frozen iff `frozen_cell`.
int UnrollChain(const RnnLikeModel& source, graph::ModelGraph* g,
                int input_id, const nn::LayerPtr& cell, bool frozen_cell) {
  const RnnConfig& cfg = source.config();
  const int emb =
      g->AddNode(source.embedding(), {input_id}, /*frozen=*/true);
  // Shared scaffolding instances keep the unrolled expressions identical
  // across candidate models (Definition 4.3), so the chain merges.
  int h = g->AddNode(source.h0(), {emb}, /*frozen=*/true);
  for (int64_t t = 0; t < cfg.seq_len; ++t) {
    const int xt = g->AddNode(source.selectors()[static_cast<size_t>(t)],
                              {emb}, /*frozen=*/true);
    h = g->AddNode(cell, {xt, h}, frozen_cell);
  }
  return h;
}

}  // namespace

graph::ModelGraph RnnLikeModel::BuildSourceGraph() const {
  graph::ModelGraph g("rnn_src");
  const int input_id = g.AddInput(input_);
  const int h = UnrollChain(*this, &g, input_id, cell_, /*frozen_cell=*/true);
  g.MarkOutput(h);
  g.Validate();
  return g;
}

graph::ModelGraph BuildRnnFeatureTransferModel(const RnnLikeModel& source,
                                               int64_t num_classes,
                                               const std::string& name,
                                               uint64_t seed) {
  Rng rng(seed);
  graph::ModelGraph g(name);
  const int input_id = g.AddInput(source.input());
  const int h = UnrollChain(source, &g, input_id, source.cell(),
                            /*frozen_cell=*/true);
  const int logits = g.AddNode(
      std::make_shared<nn::DenseLayer>(name + ".classifier",
                                       source.config().hidden, num_classes,
                                       nn::Activation::kNone, &rng),
      {h}, /*frozen=*/false);
  g.MarkOutput(logits);
  g.Validate();
  return g;
}

graph::ModelGraph BuildRnnFineTuneModel(const RnnLikeModel& source,
                                        int64_t num_classes,
                                        const std::string& name,
                                        uint64_t seed) {
  Rng rng(seed);
  graph::ModelGraph g(name);
  const int input_id = g.AddInput(source.input());
  const int h = UnrollChain(source, &g, input_id, source.cell()->Clone(),
                            /*frozen_cell=*/false);
  const int logits = g.AddNode(
      std::make_shared<nn::DenseLayer>(name + ".classifier",
                                       source.config().hidden, num_classes,
                                       nn::Activation::kNone, &rng),
      {h}, /*frozen=*/false);
  g.MarkOutput(logits);
  g.Validate();
  return g;
}

}  // namespace zoo
}  // namespace nautilus
