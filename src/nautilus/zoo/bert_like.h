#ifndef NAUTILUS_ZOO_BERT_LIKE_H_
#define NAUTILUS_ZOO_BERT_LIKE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/basic.h"
#include "nautilus/nn/transformer.h"

namespace nautilus {
namespace zoo {

/// Configuration of the BERT-like transformer encoder. PaperScale matches
/// BERT-base (the source model of the FTR-* and ATR workloads in the paper);
/// MiniScale/TinyScale are CPU-trainable shrunken versions used for measured
/// runs and tests.
struct BertConfig {
  int64_t vocab = 1000;
  int64_t seq_len = 16;
  int64_t hidden = 32;
  int64_t heads = 4;
  int64_t ffn = 64;
  int64_t num_blocks = 4;

  static BertConfig PaperScale() {
    return {.vocab = 30522,
            .seq_len = 128,
            .hidden = 768,
            .heads = 12,
            .ffn = 3072,
            .num_blocks = 12};
  }
  static BertConfig MiniScale() {
    return {.vocab = 500,
            .seq_len = 12,
            .hidden = 32,
            .heads = 4,
            .ffn = 64,
            .num_blocks = 4};
  }
  static BertConfig TinyScale() {
    return {.vocab = 50,
            .seq_len = 6,
            .hidden = 8,
            .heads = 2,
            .ffn = 16,
            .num_blocks = 4};
  }
};

/// A "pretrained" BERT-like encoder: deterministic seeded weights standing
/// in for a model-hub checkpoint. Holds the shared layer instances that all
/// candidate models reference, which is what makes their frozen prefixes
/// identical expressions (Definition 4.3) for the multi-model graph.
class BertLikeModel {
 public:
  BertLikeModel(const BertConfig& config, uint64_t seed);

  const BertConfig& config() const { return config_; }
  const std::shared_ptr<nn::InputLayer>& input() const { return input_; }
  const std::shared_ptr<nn::EmbeddingBlockLayer>& embedding() const {
    return embedding_;
  }
  const std::vector<std::shared_ptr<nn::TransformerBlockLayer>>& blocks()
      const {
    return blocks_;
  }

  /// The source graph M_src with every layer frozen.
  graph::ModelGraph BuildSourceGraph() const;

 private:
  BertConfig config_;
  std::shared_ptr<nn::InputLayer> input_;
  std::shared_ptr<nn::EmbeddingBlockLayer> embedding_;
  std::vector<std::shared_ptr<nn::TransformerBlockLayer>> blocks_;
};

/// The six feature-extraction strategies of the paper's FTR-1 workload
/// (Table 3, following Devlin et al.'s BERT feature-based experiments).
enum class BertFeature {
  kEmbedding,
  kSecondLastHidden,
  kLastHidden,
  kSumLast4,
  kConcatLast4,
  kSumAllHidden,
};

const char* BertFeatureName(BertFeature f);

/// Feature transfer (Section 2.4): all source layers frozen; a new trainable
/// transformer block + [CLS] classifier head on the chosen features.
graph::ModelGraph BuildBertFeatureTransferModel(const BertLikeModel& source,
                                                BertFeature feature,
                                                int64_t num_classes,
                                                const std::string& name,
                                                uint64_t seed);

/// Adapter training (Section 2.4): Houlsby-style adapters after each of the
/// top `num_adapted` blocks; everything pretrained stays frozen.
graph::ModelGraph BuildBertAdapterModel(const BertLikeModel& source,
                                        int64_t num_adapted,
                                        int64_t num_classes,
                                        const std::string& name,
                                        uint64_t seed);

/// Fine-tuning (Section 2.4): the top `num_unfrozen` blocks are unfrozen
/// (cloned so training does not corrupt the shared pretrained weights); a
/// classifier head is added on the [CLS] position.
graph::ModelGraph BuildBertFineTuneModel(const BertLikeModel& source,
                                         int64_t num_unfrozen,
                                         int64_t num_classes,
                                         const std::string& name,
                                         uint64_t seed);

}  // namespace zoo
}  // namespace nautilus

#endif  // NAUTILUS_ZOO_BERT_LIKE_H_
