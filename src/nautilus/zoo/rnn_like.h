#ifndef NAUTILUS_ZOO_RNN_LIKE_H_
#define NAUTILUS_ZOO_RNN_LIKE_H_

#include <cstdint>
#include <memory>
#include <string>

#include <vector>

#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/combine.h"
#include "nautilus/nn/recurrent.h"
#include "nautilus/nn/transformer.h"

namespace nautilus {
namespace zoo {

/// Configuration of a small recurrent encoder. Recurrent models fall
/// outside the paper's DAG formalization; Section 2.5 states Nautilus
/// "can support recurrent models by unraveling them in time" — this zoo
/// entry implements that unrolling, producing a DAG with one shared-cell
/// node per timestep.
struct RnnConfig {
  int64_t vocab = 200;
  int64_t seq_len = 8;
  int64_t embed_dim = 16;
  int64_t hidden = 24;

  static RnnConfig MiniScale() { return {}; }
  static RnnConfig TinyScale() {
    return {.vocab = 40, .seq_len = 5, .embed_dim = 6, .hidden = 8};
  }
};

/// A "pretrained" recurrent encoder: embedding block + one Elman cell,
/// shared across all timesteps and all candidate models.
class RnnLikeModel {
 public:
  RnnLikeModel(const RnnConfig& config, uint64_t seed);

  const RnnConfig& config() const { return config_; }
  const std::shared_ptr<nn::InputLayer>& input() const { return input_; }
  const std::shared_ptr<nn::EmbeddingBlockLayer>& embedding() const {
    return embedding_;
  }
  const std::shared_ptr<nn::RnnCellLayer>& cell() const { return cell_; }
  /// Shared unrolling scaffolding (timestep selectors and h_0): the same
  /// instances across all candidates, so unrolled chains merge in the
  /// multi-model graph.
  const std::shared_ptr<nn::ZeroStateLayer>& h0() const { return h0_; }
  const std::vector<std::shared_ptr<nn::SelectTokenLayer>>& selectors() const {
    return selectors_;
  }

  /// The unrolled source DAG (all layers frozen): one cell application per
  /// timestep, ending at the final hidden state.
  graph::ModelGraph BuildSourceGraph() const;

 private:
  RnnConfig config_;
  std::shared_ptr<nn::InputLayer> input_;
  std::shared_ptr<nn::EmbeddingBlockLayer> embedding_;
  std::shared_ptr<nn::RnnCellLayer> cell_;
  std::shared_ptr<nn::ZeroStateLayer> h0_;
  std::vector<std::shared_ptr<nn::SelectTokenLayer>> selectors_;
};

/// Feature transfer over the unrolled recurrent encoder: the frozen cell
/// chain is materializable end to end (its final hidden state is a prime
/// materialization candidate); a trainable classifier head is added.
graph::ModelGraph BuildRnnFeatureTransferModel(const RnnLikeModel& source,
                                               int64_t num_classes,
                                               const std::string& name,
                                               uint64_t seed);

/// Fine-tuning variant: the cell is cloned and unfrozen — because every
/// timestep shares it, the whole unrolled chain becomes trainable and
/// nothing beyond the embedding remains materializable.
graph::ModelGraph BuildRnnFineTuneModel(const RnnLikeModel& source,
                                        int64_t num_classes,
                                        const std::string& name,
                                        uint64_t seed);

}  // namespace zoo
}  // namespace nautilus

#endif  // NAUTILUS_ZOO_RNN_LIKE_H_
