// Successive halving over a transfer-learning candidate set (an extension
// beyond the paper's grid/random search): rungs of short training eliminate
// half the candidates each round, with Nautilus's fused plans and the
// expression-addressed feature store shared across rungs.
//
// Build & run:   ./build/examples/successive_halving_demo
#include <cstdio>
#include <filesystem>

#include "nautilus/core/successive_halving.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

using namespace nautilus;

int main() {
  zoo::BertLikeModel encoder(zoo::BertConfig::MiniScale(), 47);

  core::Workload workload;
  const zoo::BertFeature kFeatures[] = {
      zoo::BertFeature::kLastHidden, zoo::BertFeature::kSecondLastHidden,
      zoo::BertFeature::kSumLast4, zoo::BertFeature::kConcatLast4};
  int index = 0;
  for (zoo::BertFeature feature : kFeatures) {
    for (double lr : {5e-3, 1e-3}) {
      core::Hyperparams hp;
      hp.batch_size = 16;
      hp.learning_rate = lr;
      workload.emplace_back(
          zoo::BuildBertFeatureTransferModel(
              encoder, feature, 4, "shd_m" + std::to_string(index),
              900 + static_cast<uint64_t>(index)),
          hp);
      ++index;
    }
  }

  core::SystemConfig config;
  config.expected_max_records = 400;
  config.flops_per_second = 2.0e9;
  config.disk_bytes_per_second = 200.0 * (1 << 20);
  config.workspace_bytes = 64.0 * (1 << 20);
  config.per_model_setup_seconds = 0.01;

  data::LabeledDataset pool =
      data::GenerateTextPool(encoder, 400, /*num_classes=*/4, /*seed=*/13);
  const auto dir = std::filesystem::temp_directory_path() / "nautilus_shd";
  std::filesystem::remove_all(dir);

  core::SuccessiveHalvingOptions options;
  options.eta = 2;
  options.rung_epochs = 1;
  core::SuccessiveHalvingResult result = core::RunSuccessiveHalving(
      &workload, config, pool.Slice(0, 320), pool.Slice(320, 400),
      dir.string(), options);
  std::filesystem::remove_all(dir);

  for (size_t r = 0; r < result.rungs.size(); ++r) {
    const auto& rung = result.rungs[r];
    std::printf("rung %zu: %zu candidates ->", r, rung.trained_models.size());
    for (int m : rung.survivors) std::printf(" m%d", m);
    std::printf("\n");
  }
  std::printf("winner: %s (val-acc %.3f) after %d model-rungs "
              "(exhaustive full training would be %zu x full epochs)\n",
              workload[static_cast<size_t>(result.best_model)]
                  .model.name()
                  .c_str(),
              result.best_accuracy, result.total_model_rungs,
              workload.size());
  return 0;
}
