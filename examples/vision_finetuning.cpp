// Fine-tuning a ResNet-like CNN on an evolving image dataset (the paper's
// FTU/Malaria workload, shrunk to CPU scale), comparing Nautilus against
// the current practice on wall-clock time while asserting they pick the
// same models at the same accuracy.
//
// Build & run:   ./build/examples/vision_finetuning
#include <cstdio>
#include <filesystem>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/resnet_like.h"

using namespace nautilus;

namespace {

core::Workload MakeWorkload(const zoo::ResNetLikeModel& source) {
  core::Workload workload;
  int index = 0;
  for (int64_t depth : {1, 2}) {  // fine-tune last 1 or 2 residual blocks
    for (double lr : {1e-3, 5e-4}) {
      core::Hyperparams hp;
      hp.batch_size = 16;
      hp.learning_rate = lr;
      hp.epochs = 2;
      workload.emplace_back(
          zoo::BuildResNetFineTuneModel(source, depth, /*num_classes=*/2,
                                        "ftu_m" + std::to_string(index),
                                        900 + static_cast<uint64_t>(index)),
          hp);
      ++index;
    }
  }
  return workload;
}

}  // namespace

int main() {
  constexpr int kCycles = 3;
  constexpr int64_t kPerCycle = 120;

  core::SystemConfig config;
  config.expected_max_records = kCycles * kPerCycle;
  config.disk_budget_bytes = 512.0 * (1 << 20);
  config.workspace_bytes = 64.0 * (1 << 20);
  config.flops_per_second = 2.0e9;  // CPU-scale compute throughput
  config.disk_bytes_per_second = 200.0 * (1 << 20);

  const auto base = std::filesystem::temp_directory_path() / "nautilus_ftu";
  std::filesystem::remove_all(base);

  double seconds[2] = {0.0, 0.0};
  float final_acc[2] = {0.0f, 0.0f};
  const char* names[2] = {"Current Practice", "Nautilus"};
  for (int mode = 0; mode < 2; ++mode) {
    // Fresh pretrained weights per run (same seed -> identical weights).
    zoo::ResNetLikeModel source(zoo::ResNetConfig::MiniScale(), 23);
    data::LabeledDataset pool = data::GenerateImagePool(
        source.config(), kCycles * kPerCycle, /*num_classes=*/2, /*seed=*/3,
        /*noise_stddev=*/0.8f);

    core::ModelSelectionOptions options;
    if (mode == 0) {
      options.materialization = core::MaterializationMode::kNone;
      options.fusion = false;
      options.full_checkpoints = true;
    }
    core::ModelSelection selection(
        MakeWorkload(source), config,
        (base / names[mode]).string(), options);
    data::LabelingSimulator labeler(pool, kPerCycle, 0.8);
    double elapsed = selection.init_seconds();
    core::FitResult last;
    while (labeler.HasNextCycle()) {
      auto batch = labeler.NextCycle();
      last = selection.Fit(batch.train, batch.valid);
      elapsed += last.seconds_total;
    }
    seconds[mode] = elapsed;
    final_acc[mode] = last.best_accuracy;
    std::printf("%-17s total %.2fs, final best val-acc %.3f, io: %s\n",
                names[mode], elapsed, last.best_accuracy,
                selection.io_stats().ToString().c_str());
  }
  std::printf("speedup: %.2fx (identical accuracy: %s)\n",
              seconds[0] / seconds[1],
              final_acc[0] == final_acc[1] ? "yes" : "NO");
  std::filesystem::remove_all(base);
  return 0;
}
