// Adapter training (the paper's ATR workload, shrunk): Houlsby-style
// bottleneck adapters on the top blocks of a frozen encoder. This example
// prints the optimizer's decisions — which layers get materialized, how the
// reuse plans rewrite each candidate, and what got fused — before running
// two labeling cycles.
//
// Build & run:   ./build/examples/adapter_training
#include <cstdio>
#include <filesystem>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/util/strings.h"
#include "nautilus/zoo/bert_like.h"

using namespace nautilus;

int main() {
  zoo::BertLikeModel encoder(zoo::BertConfig::MiniScale(), 31);

  core::Workload workload;
  int index = 0;
  for (int64_t adapted : {1, 2, 3}) {
    for (double lr : {5e-3, 1e-3}) {
      core::Hyperparams hp;
      hp.batch_size = 16;
      hp.learning_rate = lr;
      hp.epochs = 2;
      workload.emplace_back(
          zoo::BuildBertAdapterModel(encoder, adapted, /*num_classes=*/4,
                                     "atr_a" + std::to_string(adapted) +
                                         "_lr" + std::to_string(lr),
                                     700 + static_cast<uint64_t>(index)),
          hp);
      ++index;
    }
  }

  core::SystemConfig config;
  config.expected_max_records = 400;
  config.disk_budget_bytes = 256.0 * (1 << 20);
  config.workspace_bytes = 64.0 * (1 << 20);
  config.flops_per_second = 2.0e9;  // CPU-scale compute throughput
  config.disk_bytes_per_second = 200.0 * (1 << 20);
  const auto dir = std::filesystem::temp_directory_path() / "nautilus_atr";
  std::filesystem::remove_all(dir);

  core::ModelSelection selection(workload, config, dir.string(), {});

  // --- Inspect the optimizer's output.
  const auto& mm = selection.multi_model();
  std::printf("multi-model graph: %zu materializable units\n",
              mm.units().size());
  for (size_t u = 0; u < mm.units().size(); ++u) {
    const auto& unit = mm.units()[u];
    std::printf("  unit %-2zu %-14s shared by %zu models, %s/record%s\n", u,
                unit.layer->name().c_str(), unit.used_by_models.size(),
                HumanBytes(unit.disk_bytes).c_str(),
                selection.materialization().materialize[u]
                    ? "  [MATERIALIZED]"
                    : "");
  }
  std::printf("fused training groups:\n");
  for (const auto& group : selection.plan_groups()) {
    std::printf("  %s\n", group.DebugString().c_str());
  }

  // --- Run two labeling cycles.
  data::LabeledDataset pool =
      data::GenerateTextPool(encoder, 400, /*num_classes=*/4, /*seed=*/9);
  data::LabelingSimulator labeler(pool, 200, 0.8);
  while (labeler.HasNextCycle()) {
    auto batch = labeler.NextCycle();
    core::FitResult result = selection.Fit(batch.train, batch.valid);
    std::printf("cycle %d: best adapters config = %s (val-acc %.3f)\n",
                result.cycle,
                workload[static_cast<size_t>(result.best_model)]
                    .model.name()
                    .c_str(),
                result.best_accuracy);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
