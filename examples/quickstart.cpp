// Quickstart: define a small transfer-learning model-selection workload
// over an evolving labeled dataset and let Nautilus optimize it.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

using namespace nautilus;

int main() {
  // 1) A "pretrained" encoder (stands in for a model-hub download).
  zoo::BertLikeModel encoder(zoo::BertConfig::MiniScale(), /*seed=*/7);

  // 2) The candidate set Q: three adaptation schemes x hyperparameters.
  core::Workload workload;
  core::Hyperparams hp;
  hp.batch_size = 16;
  hp.epochs = 2;
  for (double lr : {5e-3, 1e-3}) {
    hp.learning_rate = lr;
    workload.emplace_back(
        zoo::BuildBertFeatureTransferModel(
            encoder, zoo::BertFeature::kLastHidden, /*num_classes=*/4,
            "ftr_lr" + std::to_string(lr), 100),
        hp);
    workload.emplace_back(
        zoo::BuildBertAdapterModel(encoder, /*num_adapted=*/2,
                                   /*num_classes=*/4,
                                   "atr_lr" + std::to_string(lr), 200),
        hp);
  }

  // 3) System budgets (defaults follow the paper; shrunk here for a demo)
  // and hardware characteristics matched to this machine: a CPU sustains a
  // few GFLOP/s, so recompute-vs-load tradeoffs mirror the paper's
  // GPU-vs-SSD ones.
  core::SystemConfig config;
  config.expected_max_records = 2000;
  config.disk_budget_bytes = 256.0 * (1 << 20);
  config.memory_budget_bytes = 1.0 * (1ull << 30);
  config.workspace_bytes = 64.0 * (1 << 20);
  config.flops_per_second = 2.0e9;
  config.disk_bytes_per_second = 200.0 * (1 << 20);

  const auto work_dir =
      std::filesystem::temp_directory_path() / "nautilus_quickstart";
  std::filesystem::remove_all(work_dir);

  core::ModelSelection selection(workload, config, work_dir.string(), {});
  std::printf("workload: %zu candidates, %zu materializable units, "
              "%zu fused training groups\n",
              selection.workload().size(),
              selection.multi_model().units().size(),
              selection.plan_groups().size());

  // 4) Simulate a human labeling loop: 4 cycles x 200 records.
  data::LabeledDataset pool =
      data::GenerateTextPool(encoder, 800, /*num_classes=*/4, /*seed=*/42);
  data::LabelingSimulator labeler(pool, /*records_per_cycle=*/200,
                                  /*train_fraction=*/0.8);
  while (labeler.HasNextCycle()) {
    auto batch = labeler.NextCycle();
    core::FitResult result = selection.Fit(batch.train, batch.valid);
    std::printf(
        "cycle %d: best=%s  val-acc=%.3f  (%.2fs: materialize %.2fs, "
        "train %.2fs)\n",
        result.cycle,
        selection.workload()[static_cast<size_t>(result.best_model)]
            .model.name()
            .c_str(),
        result.best_accuracy, result.seconds_total,
        result.seconds_materialize, result.seconds_train);
  }
  std::printf("storage: %s\n", selection.io_stats().ToString().c_str());
  std::filesystem::remove_all(work_dir);
  return 0;
}
