// Active-learning loop over a text task (the paper's motivating use case,
// Figure 1): each cycle the current best model ranks the unlabeled pool by
// prediction entropy, the most informative records get "labeled", and the
// whole candidate set is re-selected on the grown dataset — with Nautilus
// removing the redundant frozen-encoder work.
//
// Build & run:   ./build/examples/ner_active_learning
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/graph/executor.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/zoo/bert_like.h"

using namespace nautilus;

namespace {

// Prediction-entropy scores of `model` over pool rows.
std::vector<float> EntropyScores(const graph::ModelGraph& model,
                                 const Tensor& inputs) {
  graph::Executor executor(&model);
  executor.Forward({{model.input_ids()[0], inputs}}, /*training=*/false);
  Tensor probs = ops::SoftmaxForward(executor.Output(model.output_ids()[0]));
  const int64_t rows = probs.shape().dim(0);
  const int64_t classes = probs.shape().dim(1);
  std::vector<float> scores(static_cast<size_t>(rows), 0.0f);
  for (int64_t i = 0; i < rows; ++i) {
    float h = 0.0f;
    for (int64_t c = 0; c < classes; ++c) {
      const float p = std::max(probs.at(i * classes + c), 1e-9f);
      h -= p * std::log(p);
    }
    scores[static_cast<size_t>(i)] = h;
  }
  return scores;
}

}  // namespace

int main() {
  constexpr int kCycles = 4;
  constexpr int64_t kPerCycle = 150;
  constexpr int64_t kPool = 1200;

  zoo::BertLikeModel encoder(zoo::BertConfig::MiniScale(), 17);
  data::LabeledDataset pool =
      data::GenerateTextPool(encoder, kPool, /*num_classes=*/4, /*seed=*/5);

  // FTR-2-style candidate set over the shared encoder.
  core::Workload workload;
  const zoo::BertFeature kFeatures[] = {
      zoo::BertFeature::kSecondLastHidden, zoo::BertFeature::kLastHidden,
      zoo::BertFeature::kSumLast4, zoo::BertFeature::kConcatLast4};
  int index = 0;
  for (zoo::BertFeature feature : kFeatures) {
    for (double lr : {5e-3, 1e-3}) {
      core::Hyperparams hp;
      hp.batch_size = 16;
      hp.learning_rate = lr;
      hp.epochs = 2;
      workload.emplace_back(
          zoo::BuildBertFeatureTransferModel(
              encoder, feature, 4, "m" + std::to_string(index),
              500 + static_cast<uint64_t>(index)),
          hp);
      ++index;
    }
  }

  core::SystemConfig config;
  config.expected_max_records = kCycles * kPerCycle;
  config.disk_budget_bytes = 512.0 * (1 << 20);
  config.workspace_bytes = 64.0 * (1 << 20);
  config.flops_per_second = 2.0e9;  // CPU-scale compute throughput
  config.disk_bytes_per_second = 200.0 * (1 << 20);
  const auto dir = std::filesystem::temp_directory_path() / "nautilus_al";
  std::filesystem::remove_all(dir);
  core::ModelSelection selection(workload, config, dir.string(), {});
  std::printf("%zu candidates -> %zu fused groups, %d materialized layers\n",
              workload.size(), selection.plan_groups().size(),
              static_cast<int>(
                  std::count(selection.materialization().materialize.begin(),
                             selection.materialization().materialize.end(),
                             true)));

  // Active-learning state: which pool rows are still unlabeled.
  std::vector<int64_t> unlabeled(static_cast<size_t>(pool.size()));
  std::iota(unlabeled.begin(), unlabeled.end(), 0);
  int best_model = 0;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Rank the unlabeled pool with the current best model (first cycle:
    // arbitrary order, like seeding AL with a random batch).
    std::vector<int64_t> picked;
    if (cycle == 0) {
      picked.assign(unlabeled.begin(), unlabeled.begin() + kPerCycle);
    } else {
      Tensor pool_inputs = pool.inputs().GatherRows(unlabeled);
      std::vector<float> scores = EntropyScores(
          selection.workload()[static_cast<size_t>(best_model)].model,
          pool_inputs);
      std::vector<size_t> order(scores.size());
      std::iota(order.begin(), order.end(), 0);
      std::partial_sort(order.begin(), order.begin() + kPerCycle, order.end(),
                        [&](size_t a, size_t b) {
                          return scores[a] > scores[b];
                        });
      for (int64_t i = 0; i < kPerCycle; ++i) {
        picked.push_back(unlabeled[order[static_cast<size_t>(i)]]);
      }
    }
    // Remove picked rows from the unlabeled set.
    std::vector<int64_t> rest;
    for (int64_t row : unlabeled) {
      if (std::find(picked.begin(), picked.end(), row) == picked.end()) {
        rest.push_back(row);
      }
    }
    unlabeled = std::move(rest);

    // "Human" labels the picked batch (labels already known in the pool).
    data::LabeledDataset batch = pool.Gather(picked);
    const int64_t train_count = (kPerCycle * 4) / 5;
    core::FitResult result = selection.Fit(batch.Slice(0, train_count),
                                           batch.Slice(train_count,
                                                       batch.size()));
    best_model = result.best_model;
    std::printf("cycle %d: labeled %lld (pool left %zu), best=m%d, "
                "val-acc=%.3f, %.2fs\n",
                cycle, static_cast<long long>(kPerCycle), unlabeled.size(),
                result.best_model, result.best_accuracy,
                result.seconds_total);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
