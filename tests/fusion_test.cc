// Operator-fusion coverage: the fused-chain interpreter must be bitwise
// identical to the unfused kernels (forward and backward, at thread degrees
// 1/2/8, with and without int8 quantization), the planner must discover
// exactly the regions the grammar and cost model admit, and the executor must
// produce identical training trajectories with fusion on and off.
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "nautilus/graph/executor.h"
#include "nautilus/graph/fusion_planner.h"
#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/basic.h"
#include "nautilus/nn/combine.h"
#include "nautilus/tensor/fused_ops.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/tensor/quant.h"
#include "nautilus/util/parallel.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

using fused::ChainPlan;
using fused::OpDesc;
using fused::OpKind;

// Pins the parallelism degree for one scope and restores the previous value.
class ScopedDegree {
 public:
  explicit ScopedDegree(int degree) : saved_(ParallelismDegree()) {
    SetParallelismDegree(degree);
  }
  ~ScopedDegree() { SetParallelismDegree(saved_); }

 private:
  int saved_;
};

bool BitsEqual(const Tensor& a, const Tensor& b) {
  return a.shape().dims() == b.shape().dims() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.NumElements()) * sizeof(float)) == 0;
}

bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Chain interpreter vs unfused kernels
// ---------------------------------------------------------------------------

TEST(FusedChainTest, EltwiseChainBitwiseAtEveryDegree) {
  Rng rng(31);
  // Odd sizes: several tiles plus a remainder tile.
  Tensor x = Tensor::Randn(Shape({777, 33}), &rng, 1.0f);
  Tensor dy = Tensor::Randn(Shape({777, 33}), &rng, 1.0f);

  ChainPlan plan;
  plan.ops.push_back(OpDesc{.kind = OpKind::kRelu});
  plan.ops.push_back(OpDesc{.kind = OpKind::kTanh});
  const std::vector<std::vector<const Tensor*>> inputs = {{&x}, {nullptr}};

  // Unfused reference (bitwise deterministic at any degree by contract).
  Tensor y1 = ops::ReluForward(x);
  Tensor y2 = ops::TanhForward(y1);
  Tensor g1 = ops::TanhBackward(dy, y2);
  Tensor g0 = ops::ReluBackward(g1, y1);

  for (int degree : {1, 2, 8}) {
    ScopedDegree d(degree);
    Tensor out = fused::ChainForward(plan, inputs);
    EXPECT_TRUE(BitsEqual(out, y2)) << "forward differs at degree " << degree;
    std::vector<std::vector<Tensor>> igrads;
    fused::ChainBackward(plan, inputs, dy, /*stop_op=*/0, &igrads);
    ASSERT_EQ(igrads.size(), 2u);
    ASSERT_EQ(igrads[0].size(), 1u);
    EXPECT_TRUE(BitsEqual(igrads[0][0], g0))
        << "backward differs at degree " << degree;
  }
}

TEST(FusedChainTest, ResidualGeluLayerNormChainBitwise) {
  Rng rng(32);
  const int64_t rows = 520;  // crosses one 256-row chunk, leaves a remainder
  const int64_t cols = 48;
  Tensor a = Tensor::Randn(Shape({rows, cols}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({rows, cols}), &rng, 1.0f);
  Tensor dy = Tensor::Randn(Shape({rows, cols}), &rng, 1.0f);
  Tensor gamma = Tensor::Full(Shape({cols}), 1.0f);
  ops::AxpyInPlace(1.0f, Tensor::Randn(Shape({cols}), &rng, 0.2f), &gamma);
  Tensor beta = Tensor::Randn(Shape({cols}), &rng, 0.2f);
  const float eps = 1e-5f;

  // Unfused reference.
  Tensor s = ops::AddN({&a, &b});
  Tensor yg = ops::GeluForward(s);
  ops::LayerNormCache cache;
  Tensor y = ops::LayerNormForward(yg, gamma, beta, eps, &cache);
  Tensor dx2, dgamma, dbeta;
  ops::LayerNormBackward(dy, gamma, cache, &dx2, &dgamma, &dbeta);
  Tensor dx1 = ops::GeluBackward(dx2, s);  // AddN hands dx1 to both slots

  for (int degree : {1, 2, 8}) {
    ScopedDegree d(degree);
    Tensor dgamma_acc(gamma.shape());
    Tensor dbeta_acc(beta.shape());
    ChainPlan plan;
    plan.ops.push_back(OpDesc{.kind = OpKind::kAddN, .num_inputs = 2});
    plan.ops.push_back(OpDesc{.kind = OpKind::kGelu});
    plan.ops.push_back(OpDesc{.kind = OpKind::kLayerNorm,
                              .gamma = &gamma,
                              .beta = &beta,
                              .dgamma_acc = &dgamma_acc,
                              .dbeta_acc = &dbeta_acc,
                              .eps = eps});
    const std::vector<std::vector<const Tensor*>> inputs = {
        {&a, &b}, {nullptr}, {nullptr}};

    Tensor out = fused::ChainForward(plan, inputs);
    EXPECT_TRUE(BitsEqual(out, y)) << "forward differs at degree " << degree;

    std::vector<std::vector<Tensor>> igrads;
    fused::ChainBackward(plan, inputs, dy, /*stop_op=*/0, &igrads);
    ASSERT_EQ(igrads[0].size(), 2u);
    EXPECT_TRUE(BitsEqual(igrads[0][0], dx1)) << "degree " << degree;
    EXPECT_TRUE(BitsEqual(igrads[0][1], dx1)) << "degree " << degree;
    EXPECT_TRUE(BitsEqual(dgamma_acc, dgamma)) << "degree " << degree;
    EXPECT_TRUE(BitsEqual(dbeta_acc, dbeta)) << "degree " << degree;
  }
}

TEST(FusedChainTest, StopOpLimitsBackwardToGradFrontier) {
  Rng rng(33);
  const int64_t rows = 300;
  const int64_t cols = 32;
  Tensor a = Tensor::Randn(Shape({rows, cols}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({rows, cols}), &rng, 1.0f);
  Tensor dy = Tensor::Randn(Shape({rows, cols}), &rng, 1.0f);
  Tensor gamma = Tensor::Full(Shape({cols}), 1.0f);
  Tensor beta(Shape({cols}));
  const float eps = 1e-5f;

  Tensor s = ops::AddN({&a, &b});
  Tensor yg = ops::GeluForward(s);
  ops::LayerNormCache cache;
  (void)ops::LayerNormForward(yg, gamma, beta, eps, &cache);
  Tensor dx2, dgamma, dbeta;
  ops::LayerNormBackward(dy, gamma, cache, &dx2, &dgamma, &dbeta);

  Tensor dgamma_acc(gamma.shape());
  Tensor dbeta_acc(beta.shape());
  ChainPlan plan;
  plan.ops.push_back(OpDesc{.kind = OpKind::kAddN, .num_inputs = 2});
  plan.ops.push_back(OpDesc{.kind = OpKind::kGelu});
  plan.ops.push_back(OpDesc{.kind = OpKind::kLayerNorm,
                            .gamma = &gamma,
                            .beta = &beta,
                            .dgamma_acc = &dgamma_acc,
                            .dbeta_acc = &dbeta_acc,
                            .eps = eps});
  const std::vector<std::vector<const Tensor*>> inputs = {
      {&a, &b}, {nullptr}, {nullptr}};

  // Only the LayerNorm carries gradient: parameter grads must still match
  // the unfused kernel, and no external input grads are produced.
  std::vector<std::vector<Tensor>> igrads;
  fused::ChainBackward(plan, inputs, dy, /*stop_op=*/2, &igrads);
  EXPECT_TRUE(igrads[0].empty());
  EXPECT_TRUE(igrads[1].empty());
  EXPECT_TRUE(BitsEqual(dgamma_acc, dgamma));
  EXPECT_TRUE(BitsEqual(dbeta_acc, dbeta));
}

TEST(FusedChainTest, F16SoftmaxChainBitwise) {
  Rng rng(34);
  Tensor x = Tensor::Randn(Shape({300, 40}), &rng, 2.0f);
  Tensor dy = Tensor::Randn(Shape({300, 40}), &rng, 1.0f);

  ChainPlan plan;
  plan.ops.push_back(OpDesc{.kind = OpKind::kRoundTripF16});
  plan.ops.push_back(OpDesc{.kind = OpKind::kSoftmax});
  const std::vector<std::vector<const Tensor*>> inputs = {{&x}, {nullptr}};

  Tensor xr = ops::RoundTripF16(x);
  Tensor y = ops::SoftmaxForward(xr);
  Tensor g = ops::SoftmaxBackward(dy, y);  // f16 round trip: straight-through

  for (int degree : {1, 2, 8}) {
    ScopedDegree d(degree);
    Tensor out = fused::ChainForward(plan, inputs);
    EXPECT_TRUE(BitsEqual(out, y)) << "forward differs at degree " << degree;
    std::vector<std::vector<Tensor>> igrads;
    fused::ChainBackward(plan, inputs, dy, /*stop_op=*/0, &igrads);
    EXPECT_TRUE(BitsEqual(igrads[0][0], g)) << "degree " << degree;
  }
}

TEST(FusedChainTest, TanhMeanPoolChainBitwise) {
  Rng rng(35);
  const int64_t batch = 60, seq = 5, dim = 64;
  Tensor x = Tensor::Randn(Shape({batch, seq, dim}), &rng, 1.0f);
  Tensor dy = Tensor::Randn(Shape({batch, dim}), &rng, 1.0f);

  ChainPlan plan;
  plan.ops.push_back(OpDesc{.kind = OpKind::kTanh});
  plan.ops.push_back(OpDesc{.kind = OpKind::kMeanPool});
  plan.tile_rows = 25;  // multiple of seq; many tiles over 300 chain rows
  const std::vector<std::vector<const Tensor*>> inputs = {{&x}, {nullptr}};

  Tensor y1 = ops::TanhForward(x);
  Tensor y = ops::MeanPoolSeq(y1);
  Tensor dt = ops::MeanPoolSeqBackward(dy, x.shape());
  Tensor g0 = ops::TanhBackward(dt, y1);

  for (int degree : {1, 2, 8}) {
    ScopedDegree d(degree);
    Tensor out = fused::ChainForward(plan, inputs);
    EXPECT_TRUE(BitsEqual(out, y)) << "forward differs at degree " << degree;
    std::vector<std::vector<Tensor>> igrads;
    fused::ChainBackward(plan, inputs, dy, /*stop_op=*/0, &igrads);
    EXPECT_TRUE(BitsEqual(igrads[0][0], g0)) << "degree " << degree;
  }
}

TEST(FusedChainTest, QuantModeDoesNotChangeChainBits) {
  Rng rng(36);
  Tensor x = Tensor::Randn(Shape({256, 64}), &rng, 1.0f);
  ChainPlan plan;
  plan.ops.push_back(OpDesc{.kind = OpKind::kRelu});
  plan.ops.push_back(OpDesc{.kind = OpKind::kTanh});
  const std::vector<std::vector<const Tensor*>> inputs = {{&x}, {nullptr}};
  Tensor base = fused::ChainForward(plan, inputs);
  quant::ScopedQuantMode q(quant::QuantMode::kInt8);
  Tensor quantized = fused::ChainForward(plan, inputs);
  EXPECT_TRUE(BitsEqual(base, quantized));
}

// ---------------------------------------------------------------------------
// Planner region grammar and cost model
// ---------------------------------------------------------------------------

// input -> {d1, d2} -> add -> gelu -> layernorm [-> head]. `with_head` hangs
// a Dense classifier after the LayerNorm; otherwise the LN is the output.
graph::ModelGraph BuildResidualGraph(int64_t dim, Rng* rng, bool with_head,
                                     int* ids /* add, act, ln out params */) {
  graph::ModelGraph model("residual_chain");
  const int input_id =
      model.AddInput(std::make_shared<nn::InputLayer>("input", Shape({dim})));
  const int d1 = model.AddNode(
      std::make_shared<nn::DenseLayer>("d1", dim, dim, nn::Activation::kNone,
                                       rng),
      {input_id}, /*frozen=*/false);
  const int d2 = model.AddNode(
      std::make_shared<nn::DenseLayer>("d2", dim, dim, nn::Activation::kNone,
                                       rng),
      {input_id}, /*frozen=*/true);
  const int add = model.AddNode(std::make_shared<nn::AddLayer>("residual"),
                                {d1, d2}, /*frozen=*/true);
  const int act = model.AddNode(
      std::make_shared<nn::ActivationLayer>("act", nn::Activation::kGelu),
      {add}, /*frozen=*/true);
  const int ln =
      model.AddNode(std::make_shared<nn::LayerNormLayer>("ln", dim), {act},
                    /*frozen=*/false);
  if (with_head) {
    const int head = model.AddNode(
        std::make_shared<nn::DenseLayer>("head", dim, 8,
                                         nn::Activation::kNone, rng),
        {ln}, /*frozen=*/false);
    model.MarkOutput(head);
  } else {
    model.MarkOutput(ln);
  }
  model.Validate();
  if (ids != nullptr) {
    ids[0] = add;
    ids[1] = act;
    ids[2] = ln;
  }
  return model;
}

TEST(FusionPlannerTest, DiscoversResidualChain) {
  Rng rng(41);
  int ids[3];
  graph::ModelGraph model = BuildResidualGraph(96, &rng, /*with_head=*/true,
                                               ids);
  const graph::FusionPlan plan = graph::PlanFusion(model);
  ASSERT_EQ(plan.regions.size(), 1u);
  const graph::FusedRegion& r = plan.regions[0];
  EXPECT_EQ(r.node_ids, (std::vector<int>{ids[0], ids[1], ids[2]}));
  ASSERT_EQ(r.plan.ops.size(), 3u);
  EXPECT_EQ(r.plan.ops[0].kind, OpKind::kAddN);
  EXPECT_EQ(r.plan.ops[0].num_inputs, 2);
  EXPECT_EQ(r.plan.ops[1].kind, OpKind::kGelu);
  EXPECT_EQ(r.plan.ops[2].kind, OpKind::kLayerNorm);
  EXPECT_NE(r.plan.ops[2].gamma, nullptr);
  EXPECT_NE(r.plan.ops[2].dgamma_acc, nullptr);
  // Chain slot (-1) marks the value flowing through the region.
  ASSERT_EQ(r.slot_parents.size(), 3u);
  EXPECT_EQ(r.slot_parents[0].size(), 2u);
  EXPECT_EQ(r.slot_parents[1], (std::vector<int>{-1}));
  EXPECT_EQ(r.slot_parents[2], (std::vector<int>{-1}));
  // Bytes saved: add and gelu outputs (2 x 96 floats) never hit memory.
  EXPECT_DOUBLE_EQ(r.saved_bytes_per_record, 2.0 * 2.0 * 96.0 * 4.0);
  // LayerNorm forces 256-row reduction-chunk alignment.
  EXPECT_EQ(r.plan.tile_rows, 256);
  // region_of maps members to the region and everything else to -1.
  for (int id = 0; id < model.num_nodes(); ++id) {
    const bool member = id == ids[0] || id == ids[1] || id == ids[2];
    EXPECT_EQ(plan.region_of[static_cast<size_t>(id)], member ? 0 : -1);
  }
}

TEST(FusionPlannerTest, ChainMayTerminateAtGraphOutput) {
  Rng rng(42);
  int ids[3];
  graph::ModelGraph model = BuildResidualGraph(96, &rng, /*with_head=*/false,
                                               ids);
  const graph::FusionPlan plan = graph::PlanFusion(model);
  ASSERT_EQ(plan.regions.size(), 1u);
  EXPECT_EQ(plan.regions[0].node_ids,
            (std::vector<int>{ids[0], ids[1], ids[2]}));
}

TEST(FusionPlannerTest, InteriorOutputFencesRegion) {
  Rng rng(43);
  int ids[3];
  graph::ModelGraph model = BuildResidualGraph(96, &rng, /*with_head=*/true,
                                               ids);
  // The activation's value now escapes to the trainer: the chain is cut to
  // {add, act}, which saves only 768 bytes/record and fails the 1 KiB floor.
  model.MarkOutput(ids[1]);
  const graph::FusionPlan plan = graph::PlanFusion(model);
  EXPECT_TRUE(plan.empty());
}

TEST(FusionPlannerTest, BranchingConsumerFencesRegion) {
  Rng rng(44);
  graph::ModelGraph model("branching");
  const int input_id =
      model.AddInput(std::make_shared<nn::InputLayer>("input", Shape({96})));
  const int d1 = model.AddNode(
      std::make_shared<nn::DenseLayer>("d1", 96, 96, nn::Activation::kNone,
                                       &rng),
      {input_id}, /*frozen=*/false);
  const int act = model.AddNode(
      std::make_shared<nn::ActivationLayer>("act", nn::Activation::kRelu),
      {d1}, /*frozen=*/true);
  const int ln = model.AddNode(
      std::make_shared<nn::LayerNormLayer>("ln", 96), {act}, /*frozen=*/false);
  // Second consumer of the activation: its value must stay materialized.
  const int head2 = model.AddNode(
      std::make_shared<nn::DenseLayer>("head2", 96, 8, nn::Activation::kNone,
                                       &rng),
      {act}, /*frozen=*/false);
  const int head1 = model.AddNode(
      std::make_shared<nn::DenseLayer>("head1", 96, 8, nn::Activation::kNone,
                                       &rng),
      {ln}, /*frozen=*/false);
  model.MarkOutput(head1);
  model.MarkOutput(head2);
  model.Validate();
  const graph::FusionPlan plan = graph::PlanFusion(model);
  EXPECT_TRUE(plan.empty());
}

TEST(FusionPlannerTest, CostModelFloorRejectsSmallChains) {
  Rng rng(45);
  int ids[3];
  graph::ModelGraph model = BuildResidualGraph(96, &rng, /*with_head=*/true,
                                               ids);
  const graph::FusionPlan plan =
      graph::PlanFusion(model, /*min_saved_bytes_per_record=*/1e9);
  EXPECT_TRUE(plan.empty());
}

// input[seq, dim] -> proj dense -> tanh -> mean-pool -> head.
graph::ModelGraph BuildPoolGraph(int64_t seq, int64_t dim, Rng* rng,
                                 int* ids /* act, pool out params */) {
  graph::ModelGraph model("pool_chain");
  const int input_id = model.AddInput(
      std::make_shared<nn::InputLayer>("input", Shape({seq, dim})));
  const int proj = model.AddNode(
      std::make_shared<nn::DenseLayer>("proj", dim, dim, nn::Activation::kNone,
                                       rng),
      {input_id}, /*frozen=*/false);
  const int act = model.AddNode(
      std::make_shared<nn::ActivationLayer>("act", nn::Activation::kTanh),
      {proj}, /*frozen=*/true);
  const int pool = model.AddNode(std::make_shared<nn::MeanPoolLayer>("pool"),
                                 {act}, /*frozen=*/true);
  const int head = model.AddNode(
      std::make_shared<nn::DenseLayer>("head", dim, 8, nn::Activation::kNone,
                                       rng),
      {pool}, /*frozen=*/false);
  model.MarkOutput(head);
  model.Validate();
  if (ids != nullptr) {
    ids[0] = act;
    ids[1] = pool;
  }
  return model;
}

TEST(FusionPlannerTest, MeanPoolTerminatesChainWithRecordAlignedTiles) {
  Rng rng(46);
  int ids[2];
  graph::ModelGraph model = BuildPoolGraph(4, 64, &rng, ids);
  const graph::FusionPlan plan = graph::PlanFusion(model);
  ASSERT_EQ(plan.regions.size(), 1u);
  const graph::FusedRegion& r = plan.regions[0];
  EXPECT_EQ(r.node_ids, (std::vector<int>{ids[0], ids[1]}));
  EXPECT_EQ(r.plan.ops[1].kind, OpKind::kMeanPool);
  // Tile of 256 chain rows holds whole records (256 % seq == 0).
  EXPECT_EQ(r.plan.tile_rows, 256);
}

// ---------------------------------------------------------------------------
// Executor: fusion on/off bitwise-identical training
// ---------------------------------------------------------------------------

struct TrainingResult {
  std::vector<float> losses;
  std::vector<std::vector<float>> grads;
  std::vector<std::vector<float>> params;
};

void CollectResult(graph::Executor* exec, TrainingResult* result) {
  for (nn::Parameter* p : exec->TrainableParams()) {
    result->grads.emplace_back(p->grad.data(),
                               p->grad.data() + p->grad.NumElements());
    result->params.emplace_back(p->value.data(),
                                p->value.data() + p->value.NumElements());
  }
}

void SgdStep(graph::Executor* exec, float lr) {
  for (nn::Parameter* p : exec->TrainableParams()) {
    float* value = p->value.data();
    const float* grad = p->grad.data();
    for (int64_t k = 0; k < p->value.NumElements(); ++k) {
      value[k] -= lr * grad[k];
    }
  }
}

void ExpectResultsBitwiseEqual(const TrainingResult& a,
                               const TrainingResult& b,
                               const std::string& what) {
  EXPECT_TRUE(BitsEqual(a.losses, b.losses)) << what << ": losses differ";
  ASSERT_EQ(a.grads.size(), b.grads.size()) << what;
  for (size_t i = 0; i < a.grads.size(); ++i) {
    EXPECT_TRUE(BitsEqual(a.grads[i], b.grads[i]))
        << what << ": grad " << i << " differs";
    EXPECT_TRUE(BitsEqual(a.params[i], b.params[i]))
        << what << ": param " << i << " differs";
  }
}

// Trains the residual-chain graph for 3 SGD steps. With `trainable_branches`
// false, d1 is frozen too, so the fused region's gradient stops at the
// LayerNorm (the needs-grad frontier sits mid-chain).
TrainingResult RunChainTraining(int degree, bool fusion,
                                bool trainable_branches) {
  ScopedDegree d(degree);
  fused::ScopedFusion f(fusion);
  constexpr int64_t kDim = 96;
  constexpr int64_t kBatch = 300;  // one full tile plus a remainder tile
  constexpr int kSteps = 3;

  Rng rng(51);
  graph::ModelGraph model("chain_training");
  const int input_id = model.AddInput(
      std::make_shared<nn::InputLayer>("input", Shape({kDim})));
  const int d1 = model.AddNode(
      std::make_shared<nn::DenseLayer>("d1", kDim, kDim,
                                       nn::Activation::kNone, &rng),
      {input_id}, /*frozen=*/!trainable_branches);
  const int d2 = model.AddNode(
      std::make_shared<nn::DenseLayer>("d2", kDim, kDim,
                                       nn::Activation::kNone, &rng),
      {input_id}, /*frozen=*/true);
  const int add = model.AddNode(std::make_shared<nn::AddLayer>("residual"),
                                {d1, d2}, /*frozen=*/true);
  const int act = model.AddNode(
      std::make_shared<nn::ActivationLayer>("act", nn::Activation::kGelu),
      {add}, /*frozen=*/true);
  const int ln = model.AddNode(
      std::make_shared<nn::LayerNormLayer>("ln", kDim), {act},
      /*frozen=*/false);
  const int head = model.AddNode(
      std::make_shared<nn::DenseLayer>("head", kDim, 8,
                                       nn::Activation::kNone, &rng),
      {ln}, /*frozen=*/false);
  model.MarkOutput(head);
  model.Validate();

  graph::Executor exec(&model);
  EXPECT_EQ(exec.fusion_plan().empty(), !fusion);

  std::unordered_map<int, Tensor> feeds;
  feeds[input_id] = Tensor::Randn(Shape({kBatch, kDim}), &rng, 1.0f);
  std::vector<int32_t> labels(static_cast<size_t>(kBatch));
  for (int64_t i = 0; i < kBatch; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(i % 8);
  }

  TrainingResult result;
  for (int step = 0; step < kSteps; ++step) {
    exec.ZeroGrads();
    exec.Forward(feeds, /*training=*/true);
    Tensor probs = ops::SoftmaxForward(exec.Output(head));
    Tensor dlogits;
    result.losses.push_back(ops::SoftmaxCrossEntropy(probs, labels, &dlogits));
    std::unordered_map<int, Tensor> output_grads;
    output_grads[head] = std::move(dlogits);
    exec.Backward(output_grads);
    SgdStep(&exec, 0.05f);
  }
  CollectResult(&exec, &result);
  return result;
}

TEST(ExecutorFusionTest, ResidualChainTrainingBitwiseFusionOnOff) {
  const TrainingResult baseline =
      RunChainTraining(1, /*fusion=*/false, /*trainable_branches=*/true);
  ASSERT_FALSE(baseline.losses.empty());
  for (int degree : {1, 2, 8}) {
    const TrainingResult fused_run =
        RunChainTraining(degree, /*fusion=*/true, /*trainable_branches=*/true);
    ExpectResultsBitwiseEqual(baseline, fused_run,
                              "fused degree " + std::to_string(degree));
    const TrainingResult unfused_run =
        RunChainTraining(degree, /*fusion=*/false,
                         /*trainable_branches=*/true);
    ExpectResultsBitwiseEqual(baseline, unfused_run,
                              "unfused degree " + std::to_string(degree));
  }
}

TEST(ExecutorFusionTest, MidChainGradFrontierBitwiseFusionOnOff) {
  const TrainingResult baseline =
      RunChainTraining(1, /*fusion=*/false, /*trainable_branches=*/false);
  for (int degree : {1, 2, 8}) {
    const TrainingResult fused_run =
        RunChainTraining(degree, /*fusion=*/true,
                         /*trainable_branches=*/false);
    ExpectResultsBitwiseEqual(baseline, fused_run,
                              "frontier degree " + std::to_string(degree));
  }
}

TEST(ExecutorFusionTest, Int8QuantBitwiseFusionOnOff) {
  quant::ScopedQuantMode q(quant::QuantMode::kInt8);
  const TrainingResult baseline =
      RunChainTraining(1, /*fusion=*/false, /*trainable_branches=*/true);
  for (int degree : {1, 8}) {
    const TrainingResult fused_run =
        RunChainTraining(degree, /*fusion=*/true, /*trainable_branches=*/true);
    ExpectResultsBitwiseEqual(baseline, fused_run,
                              "int8 degree " + std::to_string(degree));
  }
}

// Mean-pool-terminated region: the fused backward expands the pooled
// gradient back over the sequence inside the single pass.
TrainingResult RunPoolTraining(int degree, bool fusion) {
  ScopedDegree d(degree);
  fused::ScopedFusion f(fusion);
  constexpr int64_t kSeq = 4;
  constexpr int64_t kDim = 64;
  constexpr int64_t kBatch = 100;  // 400 chain rows: tile + remainder

  Rng rng(52);
  int ids[2];
  graph::ModelGraph model = BuildPoolGraph(kSeq, kDim, &rng, ids);
  const int input_id = model.input_ids()[0];
  const int head = model.output_ids()[0];

  graph::Executor exec(&model);
  EXPECT_EQ(exec.fusion_plan().empty(), !fusion);

  std::unordered_map<int, Tensor> feeds;
  feeds[input_id] = Tensor::Randn(Shape({kBatch, kSeq, kDim}), &rng, 1.0f);
  std::vector<int32_t> labels(static_cast<size_t>(kBatch));
  for (int64_t i = 0; i < kBatch; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(i % 8);
  }

  TrainingResult result;
  for (int step = 0; step < 3; ++step) {
    exec.ZeroGrads();
    exec.Forward(feeds, /*training=*/true);
    Tensor probs = ops::SoftmaxForward(exec.Output(head));
    Tensor dlogits;
    result.losses.push_back(ops::SoftmaxCrossEntropy(probs, labels, &dlogits));
    std::unordered_map<int, Tensor> output_grads;
    output_grads[head] = std::move(dlogits);
    exec.Backward(output_grads);
    SgdStep(&exec, 0.05f);
  }
  CollectResult(&exec, &result);
  return result;
}

TEST(ExecutorFusionTest, MeanPoolChainTrainingBitwiseFusionOnOff) {
  const TrainingResult baseline = RunPoolTraining(1, /*fusion=*/false);
  for (int degree : {1, 2, 8}) {
    const TrainingResult fused_run = RunPoolTraining(degree, /*fusion=*/true);
    ExpectResultsBitwiseEqual(baseline, fused_run,
                              "pool degree " + std::to_string(degree));
  }
}

// Two-branch model: branch A holds the fused region, branch B is plain. A
// skip mask deactivating branch A must leave branch B's results bitwise
// unchanged whether fusion is on or off (the all-skipped region is skipped).
TrainingResult RunSkipTraining(int degree, bool fusion) {
  ScopedDegree d(degree);
  fused::ScopedFusion f(fusion);
  constexpr int64_t kDim = 96;
  constexpr int64_t kBatch = 128;

  Rng rng(53);
  graph::ModelGraph model("skip_branch");
  const int input_id = model.AddInput(
      std::make_shared<nn::InputLayer>("input", Shape({kDim})));
  const int trunk = model.AddNode(
      std::make_shared<nn::DenseLayer>("trunk", kDim, kDim,
                                       nn::Activation::kGelu, &rng),
      {input_id}, /*frozen=*/true);
  // Branch A: residual pair -> add -> act -> ln -> head (fusible chain).
  const int a1 = model.AddNode(
      std::make_shared<nn::DenseLayer>("a1", kDim, kDim,
                                       nn::Activation::kNone, &rng),
      {trunk}, /*frozen=*/false);
  const int a2 = model.AddNode(
      std::make_shared<nn::DenseLayer>("a2", kDim, kDim,
                                       nn::Activation::kNone, &rng),
      {trunk}, /*frozen=*/false);
  const int add = model.AddNode(std::make_shared<nn::AddLayer>("a_res"),
                                {a1, a2}, /*frozen=*/true);
  const int act = model.AddNode(
      std::make_shared<nn::ActivationLayer>("a_act", nn::Activation::kRelu),
      {add}, /*frozen=*/true);
  const int ln = model.AddNode(
      std::make_shared<nn::LayerNormLayer>("a_ln", kDim), {act},
      /*frozen=*/false);
  const int head_a = model.AddNode(
      std::make_shared<nn::DenseLayer>("a_head", kDim, 8,
                                       nn::Activation::kNone, &rng),
      {ln}, /*frozen=*/false);
  model.MarkOutput(head_a);
  // Branch B: plain dense head.
  const int b1 = model.AddNode(
      std::make_shared<nn::DenseLayer>("b1", kDim, kDim,
                                       nn::Activation::kRelu, &rng),
      {trunk}, /*frozen=*/false);
  const int head_b = model.AddNode(
      std::make_shared<nn::DenseLayer>("b_head", kDim, 8,
                                       nn::Activation::kNone, &rng),
      {b1}, /*frozen=*/false);
  model.MarkOutput(head_b);
  model.Validate();

  graph::Executor exec(&model);
  if (fusion) {
    EXPECT_EQ(exec.fusion_plan().regions.size(), 1u);
  }

  std::vector<bool> skip(static_cast<size_t>(model.num_nodes()), false);
  for (int id : {a1, a2, add, act, ln, head_a}) {
    skip[static_cast<size_t>(id)] = true;
  }

  std::unordered_map<int, Tensor> feeds;
  feeds[input_id] = Tensor::Randn(Shape({kBatch, kDim}), &rng, 1.0f);
  std::vector<int32_t> labels(static_cast<size_t>(kBatch));
  for (int64_t i = 0; i < kBatch; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(i % 8);
  }

  TrainingResult result;
  for (int step = 0; step < 2; ++step) {
    exec.ZeroGrads();
    exec.Forward(feeds, /*training=*/true, &skip);
    Tensor probs = ops::SoftmaxForward(exec.Output(head_b));
    Tensor dlogits;
    result.losses.push_back(ops::SoftmaxCrossEntropy(probs, labels, &dlogits));
    std::unordered_map<int, Tensor> output_grads;
    output_grads[head_b] = std::move(dlogits);
    exec.Backward(output_grads);
    SgdStep(&exec, 0.05f);
  }
  CollectResult(&exec, &result);
  return result;
}

TEST(ExecutorFusionTest, SkippedRegionBranchBitwiseFusionOnOff) {
  const TrainingResult baseline = RunSkipTraining(1, /*fusion=*/false);
  for (int degree : {1, 8}) {
    const TrainingResult fused_run = RunSkipTraining(degree, /*fusion=*/true);
    ExpectResultsBitwiseEqual(baseline, fused_run,
                              "skip degree " + std::to_string(degree));
  }
}

// ---------------------------------------------------------------------------
// Per-pass serial-backward fallback (shared parameterized layer instances)
// ---------------------------------------------------------------------------

// A trainable layer instance shared by two graph nodes forces the serial
// backward — but only on passes where both nodes are live. The graph also
// contains a fusible chain, which must NOT be planned: the serial walk needs
// the interior node outputs the fused forward never materializes.
TrainingResult RunSharedLayerTraining(int degree, bool skip_second) {
  ScopedDegree d(degree);
  fused::ScopedFusion f(true);
  constexpr int64_t kDim = 128;
  constexpr int64_t kBatch = 64;

  Rng rng(54);
  graph::ModelGraph model("shared_layer");
  const int input_id = model.AddInput(
      std::make_shared<nn::InputLayer>("input", Shape({kDim})));
  const int trunk = model.AddNode(
      std::make_shared<nn::DenseLayer>("trunk", kDim, kDim,
                                       nn::Activation::kGelu, &rng),
      {input_id}, /*frozen=*/true);
  auto shared = std::make_shared<nn::DenseLayer>(
      "shared", kDim, 16, nn::Activation::kRelu, &rng);
  const int x_id = model.AddNode(shared, {trunk}, /*frozen=*/false);
  const int y_id = model.AddNode(shared, {trunk}, /*frozen=*/false);
  model.MarkOutput(x_id);
  model.MarkOutput(y_id);
  // Fusible act -> ln chain (1024 bytes/record saved at dim 128).
  const int act = model.AddNode(
      std::make_shared<nn::ActivationLayer>("z_act", nn::Activation::kGelu),
      {trunk}, /*frozen=*/true);
  const int ln = model.AddNode(
      std::make_shared<nn::LayerNormLayer>("z_ln", kDim), {act},
      /*frozen=*/false);
  const int head_z = model.AddNode(
      std::make_shared<nn::DenseLayer>("z_head", kDim, 16,
                                       nn::Activation::kNone, &rng),
      {ln}, /*frozen=*/false);
  model.MarkOutput(head_z);
  model.Validate();

  graph::Executor exec(&model);
  // Duplicated parameterized layer => fusion disabled despite the gate.
  EXPECT_TRUE(exec.fusion_plan().empty());

  std::vector<bool> skip(static_cast<size_t>(model.num_nodes()), false);
  if (skip_second) skip[static_cast<size_t>(y_id)] = true;

  std::unordered_map<int, Tensor> feeds;
  feeds[input_id] = Tensor::Randn(Shape({kBatch, kDim}), &rng, 1.0f);
  std::vector<int32_t> labels(static_cast<size_t>(kBatch));
  for (int64_t i = 0; i < kBatch; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(i % 16);
  }

  TrainingResult result;
  for (int step = 0; step < 2; ++step) {
    exec.ZeroGrads();
    exec.Forward(feeds, /*training=*/true, &skip);
    std::unordered_map<int, Tensor> output_grads;
    std::vector<int> live_heads = {x_id, head_z};
    if (!skip_second) live_heads.insert(live_heads.begin() + 1, y_id);
    for (int id : live_heads) {
      Tensor probs = ops::SoftmaxForward(exec.Output(id));
      Tensor dlogits;
      result.losses.push_back(
          ops::SoftmaxCrossEntropy(probs, labels, &dlogits));
      output_grads[id] = std::move(dlogits);
    }
    exec.Backward(output_grads);
    SgdStep(&exec, 0.05f);
  }
  CollectResult(&exec, &result);
  return result;
}

TEST(SerialBackwardTest, SharedLayerBitwiseAcrossDegrees) {
  // Both shared nodes live: the serial fallback must trigger and results
  // must not depend on the degree.
  const TrainingResult baseline = RunSharedLayerTraining(1, false);
  for (int degree : {2, 8}) {
    const TrainingResult run = RunSharedLayerTraining(degree, false);
    ExpectResultsBitwiseEqual(baseline, run,
                              "serial degree " + std::to_string(degree));
  }
}

TEST(SerialBackwardTest, SkipMaskReenablesParallelBackwardDeterministically) {
  // Only one shared node live per pass: no duplicate-accumulation race, the
  // parallel wavefront backward runs, and results stay degree-invariant.
  const TrainingResult baseline = RunSharedLayerTraining(1, true);
  for (int degree : {2, 8}) {
    const TrainingResult run = RunSharedLayerTraining(degree, true);
    ExpectResultsBitwiseEqual(baseline, run,
                              "skip-serial degree " + std::to_string(degree));
  }
}

// ---------------------------------------------------------------------------
// DOT rendering of fused regions
// ---------------------------------------------------------------------------

TEST(ToDotTest, RendersFusedRegionsAsClusters) {
  Rng rng(55);
  int ids[3];
  graph::ModelGraph model = BuildResidualGraph(96, &rng, /*with_head=*/true,
                                               ids);
  const graph::FusionPlan plan = graph::PlanFusion(model);
  ASSERT_EQ(plan.regions.size(), 1u);
  std::vector<std::vector<int>> clusters;
  for (const graph::FusedRegion& r : plan.regions) {
    clusters.push_back(r.node_ids);
  }
  const std::string plain = model.ToDot();
  EXPECT_EQ(plain.find("cluster_fused"), std::string::npos);
  const std::string dot = model.ToDot(&clusters);
  EXPECT_NE(dot.find("subgraph cluster_fused0"), std::string::npos);
  EXPECT_NE(dot.find("fused region 0"), std::string::npos);
  // Member nodes render inside the cluster, and every edge survives.
  EXPECT_NE(dot.find("residual"), std::string::npos);
  for (const graph::GraphNode& node : model.nodes()) {
    for (int p : node.parents) {
      const std::string edge = "n" + std::to_string(p) + " -> n" +
                               std::to_string(node.id) + ";";
      EXPECT_NE(dot.find(edge), std::string::npos) << edge;
    }
  }
}

}  // namespace
}  // namespace nautilus
