// Parity and determinism tests for the blocked GEMM: the cache-blocked,
// packed, register-tiled kernel (both dispatch paths) against the serial
// unblocked reference, fused epilogues against the separate ops, and the
// bitwise-reproducibility contract across parallelism degrees.
#include <cmath>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/tensor/gemm.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/parallel.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

class ScopedDegree {
 public:
  explicit ScopedDegree(int degree) : saved_(ParallelismDegree()) {
    SetParallelismDegree(degree);
  }
  ~ScopedDegree() { SetParallelismDegree(saved_); }

 private:
  int saved_;
};

// Pins the GEMM dispatch path for a scope and restores it afterwards.
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) : saved_(ops::GemmSimdEnabled()) {
    ops::SetGemmSimdEnabled(enabled);
  }
  ~ScopedSimd() { ops::SetGemmSimdEnabled(saved_); }

 private:
  bool saved_;
};

std::vector<float> RandVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.Normal() * 0.5f;
  return v;
}

float MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b) {
  float m = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Blocked vs reference across shapes that straddle every tile boundary:
// 1-row, micro-tile edges (6/16), kc boundary (256), and odd primes.
// ---------------------------------------------------------------------------

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, PortablePathBitwiseMatchesReference) {
  // The blocked portable path performs the exact same scalar mul-adds in the
  // exact same ascending-k order as the reference, so it must agree bit for
  // bit — packing and k-blocking reorder memory, not arithmetic.
  const auto [m, n, k] = GetParam();
  ScopedSimd simd(false);
  auto a = RandVec(int64_t{m} * k, 1);
  auto b = RandVec(int64_t{k} * n, 2);
  std::vector<float> c(static_cast<size_t>(m) * n, -7.0f);
  std::vector<float> ref(static_cast<size_t>(m) * n, 3.0f);
  for (ops::GemmTranspose t :
       {ops::GemmTranspose::kNN, ops::GemmTranspose::kNT,
        ops::GemmTranspose::kTN}) {
    ops::Gemm(t, m, n, k, a.data(), b.data(), c.data());
    ops::GemmReference(t, m, n, k, a.data(), b.data(), ref.data());
    ASSERT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)), 0)
        << "transpose variant " << static_cast<int>(t);
  }
}

TEST_P(GemmShapes, SimdPathCloseToReference) {
  if (!ops::GemmSimdAvailable()) GTEST_SKIP() << "no AVX2+FMA on this host";
  const auto [m, n, k] = GetParam();
  ScopedSimd simd(true);
  auto a = RandVec(int64_t{m} * k, 3);
  auto b = RandVec(int64_t{k} * n, 4);
  std::vector<float> c(static_cast<size_t>(m) * n);
  std::vector<float> ref(static_cast<size_t>(m) * n);
  ops::Gemm(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(), c.data());
  ops::GemmReference(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(),
                     ref.data());
  // FMA keeps the product unrounded, so the two paths differ only by a few
  // ulps per accumulation step.
  EXPECT_LT(MaxAbsDiff(c, ref), 1e-4f * static_cast<float>(k));
}

TEST_P(GemmShapes, AccumulateAddsOntoExistingC) {
  const auto [m, n, k] = GetParam();
  ScopedSimd simd(false);
  auto a = RandVec(int64_t{m} * k, 5);
  auto b = RandVec(int64_t{k} * n, 6);
  auto seed = RandVec(int64_t{m} * n, 7);
  std::vector<float> c = seed;
  std::vector<float> ref = seed;
  ops::Gemm(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(), c.data(),
            ops::Epilogue{}, /*accumulate=*/true);
  ops::GemmReference(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(),
                     ref.data(), ops::Epilogue{}, /*accumulate=*/true);
  ASSERT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 17, 300),
                      std::make_tuple(5, 15, 3), std::make_tuple(6, 16, 256),
                      std::make_tuple(7, 17, 257), std::make_tuple(13, 1, 64),
                      std::make_tuple(48, 33, 80), std::make_tuple(49, 65, 31),
                      std::make_tuple(97, 101, 103)));

// ---------------------------------------------------------------------------
// Fused epilogues vs the separate bias/activation ops.
// ---------------------------------------------------------------------------

class EpilogueKinds : public ::testing::TestWithParam<ops::EpilogueKind> {};

TEST_P(EpilogueKinds, FusedMatchesUnfusedPipeline) {
  const ops::EpilogueKind kind = GetParam();
  ScopedSimd simd(false);
  const int m = 23, n = 37, k = 65;
  Rng rng(11);
  Tensor a = Tensor::Randn(Shape({m, k}), &rng, 0.5f);
  Tensor w = Tensor::Randn(Shape({k, n}), &rng, 0.5f);
  Tensor bias = Tensor::Randn(Shape({n}), &rng, 0.5f);

  std::vector<float> fused(static_cast<size_t>(m) * n);
  std::vector<float> pre(static_cast<size_t>(m) * n);
  ops::Epilogue ep;
  ep.kind = kind;
  ep.bias = bias.data();
  ep.pre_activation = pre.data();
  ops::Gemm(ops::GemmTranspose::kNN, m, n, k, a.data(), w.data(),
            fused.data(), ep);

  // Unfused: same GEMM without epilogue, then the standalone ops. The fused
  // scalar epilogue reuses the exact activation formulas, so on the portable
  // path this is a bitwise comparison.
  Tensor z = ops::MatMul(a, w);
  ops::AddBiasInPlace(&z, bias);
  Tensor y = z;
  switch (kind) {
    case ops::EpilogueKind::kNone:
      break;
    case ops::EpilogueKind::kBias:
      break;
    case ops::EpilogueKind::kBiasRelu:
      y = ops::ReluForward(z);
      break;
    case ops::EpilogueKind::kBiasTanh:
      y = ops::TanhForward(z);
      break;
    case ops::EpilogueKind::kBiasGelu:
      y = ops::GeluForward(z);
      break;
  }
  ASSERT_EQ(std::memcmp(fused.data(), y.data(), fused.size() * sizeof(float)),
            0);
  // pre_activation must hold z = A*W + bias exactly.
  ASSERT_EQ(std::memcmp(pre.data(), z.data(), pre.size() * sizeof(float)), 0);
}

TEST_P(EpilogueKinds, ReferenceAgreesWithBlockedFused) {
  const ops::EpilogueKind kind = GetParam();
  ScopedSimd simd(false);
  const int m = 11, n = 19, k = 260;  // spans a kc boundary
  auto a = RandVec(int64_t{m} * k, 21);
  auto b = RandVec(int64_t{k} * n, 22);
  auto bias = RandVec(n, 23);
  ops::Epilogue ep;
  ep.kind = kind;
  ep.bias = bias.data();
  std::vector<float> c(static_cast<size_t>(m) * n);
  std::vector<float> ref(static_cast<size_t>(m) * n);
  ops::Gemm(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(), c.data(),
            ep);
  ops::GemmReference(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(),
                     ref.data(), ep);
  ASSERT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EpilogueKinds,
    ::testing::Values(ops::EpilogueKind::kBias, ops::EpilogueKind::kBiasRelu,
                      ops::EpilogueKind::kBiasTanh,
                      ops::EpilogueKind::kBiasGelu));

// ---------------------------------------------------------------------------
// Edge cases and semantics.
// ---------------------------------------------------------------------------

TEST(GemmEdge, EmptyKZeroFillsAndStillAppliesEpilogue) {
  const int m = 3, n = 5;
  std::vector<float> c(static_cast<size_t>(m) * n, 42.0f);
  ops::Gemm(ops::GemmTranspose::kNN, m, n, 0, nullptr, nullptr, c.data());
  for (float v : c) EXPECT_EQ(v, 0.0f);

  std::vector<float> bias = {1.0f, -2.0f, 3.0f, -4.0f, 5.0f};
  ops::Epilogue ep;
  ep.kind = ops::EpilogueKind::kBiasRelu;
  ep.bias = bias.data();
  ops::Gemm(ops::GemmTranspose::kNN, m, n, 0, nullptr, nullptr, c.data(), ep);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(c[static_cast<size_t>(i) * n + j], std::max(0.0f, bias[j]));
    }
  }
}

TEST(GemmEdge, EmptyKAccumulateKeepsC) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  ops::Gemm(ops::GemmTranspose::kNN, 2, 2, 0, nullptr, nullptr, c.data(),
            ops::Epilogue{}, /*accumulate=*/true);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[3], 4.0f);
}

TEST(GemmEdge, ZeroTimesInfPropagatesNaN) {
  // The old MatMul skipped a_ik == 0 as a shortcut, silently turning
  // 0 * inf (NaN by IEEE 754) into 0. The GEMM must not skip.
  const int m = 2, k = 3, n = 2;
  Tensor a(Shape({m, k}));
  Tensor b(Shape({k, n}));
  // Row 0 of A is all zero; column 0 of B carries an inf in row 0.
  b.at(0) = std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < b.NumElements(); ++i) {
    if (i != 0) b.at(i) = 1.0f;
  }
  Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0)));   // 0 * inf contributes NaN
  EXPECT_EQ(c.at(1), 0.0f);           // untouched column stays exact zero
}

TEST(GemmEdge, RankThreeInputsFlattenLeadingDims) {
  Rng rng(31);
  Tensor a = Tensor::Randn(Shape({2, 3, 4}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({4, 5}), &rng, 1.0f);
  Tensor c = ops::MatMul(a, w);
  ASSERT_EQ(c.NumElements(), 2 * 3 * 5);
  // Row r of the flattened result is a[r,:] . w.
  for (int r = 0; r < 6; ++r) {
    for (int j = 0; j < 5; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < 4; ++p) acc += a.at(r * 4 + p) * w.at(p * 5 + j);
      EXPECT_NEAR(c.at(r * 5 + j), acc, 1e-5f);
    }
  }
}

TEST(GemmEdge, DenseForwardMatchesManualPipeline) {
  Rng rng(41);
  Tensor x = Tensor::Randn(Shape({9, 12}), &rng, 0.7f);
  Tensor w = Tensor::Randn(Shape({12, 7}), &rng, 0.7f);
  Tensor b = Tensor::Randn(Shape({7}), &rng, 0.7f);
  Tensor pre;
  Tensor y = ops::DenseForward(x, w, b, ops::EpilogueKind::kBiasGelu, &pre);
  Tensor z = ops::MatMul(x, w);
  ops::AddBiasInPlace(&z, b);
  Tensor expect = ops::GeluForward(z);
  EXPECT_EQ(Tensor::MaxAbsDiff(y, expect), 0.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(pre, z), 0.0f);
}

// ---------------------------------------------------------------------------
// Determinism across parallelism degrees: bitwise, per dispatch path.
// ---------------------------------------------------------------------------

TEST(GemmDeterminism, BitwiseIdenticalAcrossDegrees) {
  const int m = 130, n = 70, k = 300;  // several row panels, 2 kc blocks
  auto a = RandVec(int64_t{m} * k, 51);
  auto b = RandVec(int64_t{k} * n, 52);
  auto bias = RandVec(n, 53);
  ops::Epilogue ep;
  ep.kind = ops::EpilogueKind::kBiasGelu;
  ep.bias = bias.data();
  for (bool simd_on : {false, true}) {
    if (simd_on && !ops::GemmSimdAvailable()) continue;
    ScopedSimd simd(simd_on);
    std::vector<float> base(static_cast<size_t>(m) * n);
    {
      ScopedDegree d(1);
      ops::Gemm(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(),
                base.data(), ep);
    }
    for (int degree : {2, 8}) {
      ScopedDegree d(degree);
      std::vector<float> c(static_cast<size_t>(m) * n, -1.0f);
      ops::Gemm(ops::GemmTranspose::kNN, m, n, k, a.data(), b.data(),
                c.data(), ep);
      ASSERT_EQ(std::memcmp(c.data(), base.data(), c.size() * sizeof(float)),
                0)
          << "degree " << degree << " simd " << simd_on;
    }
  }
}

TEST(GemmDispatch, ToggleIsObservable) {
  if (!ops::GemmSimdAvailable()) {
    EXPECT_STREQ(ops::GemmDispatchName(), "portable");
    // Enabling SIMD without hardware support must stay a no-op.
    ScopedSimd simd(true);
    EXPECT_FALSE(ops::GemmSimdEnabled());
    return;
  }
  {
    ScopedSimd simd(true);
    EXPECT_TRUE(ops::GemmSimdEnabled());
    EXPECT_STREQ(ops::GemmDispatchName(), "avx2");
  }
  {
    ScopedSimd simd(false);
    EXPECT_FALSE(ops::GemmSimdEnabled());
    EXPECT_STREQ(ops::GemmDispatchName(), "portable");
  }
}

}  // namespace
}  // namespace nautilus
