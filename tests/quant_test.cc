// Quantized compute & storage tests: f16/int8 round-trip error bounds, the
// packed int8 GEMM's bitwise-determinism contract (across thread counts AND
// dispatch paths — stronger than f32), fused epilogue parity, the quantized
// dense layer, v3 shard encoding (size, round-trip, append, legacy
// coexistence), and CRC fault injection on the quantized read paths.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/nn/basic.h"
#include "nautilus/nn/transformer.h"
#include "nautilus/storage/io_stats.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/tensor/qgemm.h"
#include "nautilus/tensor/quant.h"
#include "nautilus/util/parallel.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

namespace fs = std::filesystem;

class ScopedDegree {
 public:
  explicit ScopedDegree(int degree) : saved_(ParallelismDegree()) {
    SetParallelismDegree(degree);
  }
  ~ScopedDegree() { SetParallelismDegree(saved_); }

 private:
  int saved_;
};

class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) : saved_(ops::GemmSimdEnabled()) {
    ops::SetGemmSimdEnabled(enabled);
  }
  ~ScopedSimd() { ops::SetGemmSimdEnabled(saved_); }

 private:
  bool saved_;
};

std::vector<float> RandVec(int64_t n, uint64_t seed, float scale = 0.5f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.Normal() * scale;
  return v;
}

// Quantizes a row-major [m,k] activation matrix per row, as
// ops::QuantizedDenseForward does internally.
void QuantizeRows(const std::vector<float>& a, int64_t m, int64_t k,
                  std::vector<int8_t>* q, std::vector<float>* scales) {
  q->resize(static_cast<size_t>(m * k));
  scales->resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    (*scales)[static_cast<size_t>(i)] = quant::QuantizeRowAbsMax(
        a.data() + i * k, k, q->data() + i * k);
  }
}

// ---------------------------------------------------------------------------
// f16 conversion
// ---------------------------------------------------------------------------

TEST(F16Test, ExactlyRepresentableValuesRoundTrip) {
  const float exact[] = {0.0f,  -0.0f, 1.0f,   -1.0f,  0.5f,  2.0f,
                         1.5f,  -3.25f, 65504.0f, -65504.0f, 0.125f,
                         1024.0f, 0.0009765625f /* 2^-10 */};
  for (float v : exact) {
    EXPECT_EQ(quant::F16ToF32(quant::F32ToF16(v)), v) << v;
  }
}

TEST(F16Test, RelativeErrorBoundedForNormalRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.Normal() * 100.0f;
    const float r = quant::F16ToF32(quant::F32ToF16(v));
    // Round-to-nearest-even: half ULP = 2^-11 relative for f16 normals.
    EXPECT_LE(std::abs(r - v), std::abs(v) * (1.0f / 2048.0f) + 1e-8f) << v;
  }
}

TEST(F16Test, OverflowSaturatesToInfAndTinyFlushesToZero) {
  EXPECT_TRUE(std::isinf(quant::F16ToF32(quant::F32ToF16(1e6f))));
  EXPECT_TRUE(std::isinf(quant::F16ToF32(quant::F32ToF16(-1e6f))));
  EXPECT_LT(quant::F16ToF32(quant::F32ToF16(-1e6f)), 0.0f);
  EXPECT_EQ(quant::F16ToF32(quant::F32ToF16(1e-10f)), 0.0f);
  EXPECT_TRUE(std::isnan(quant::F16ToF32(
      quant::F32ToF16(std::nanf("")))));
}

// ---------------------------------------------------------------------------
// int8 absmax quantization
// ---------------------------------------------------------------------------

TEST(Int8QuantTest, RoundTripErrorBoundedByHalfScale) {
  const std::vector<float> row = RandVec(257, 3, 2.0f);
  std::vector<int8_t> q(row.size());
  const float scale = quant::QuantizeRowAbsMax(row.data(),
                                               static_cast<int64_t>(row.size()),
                                               q.data());
  ASSERT_GT(scale, 0.0f);
  std::vector<float> back(row.size());
  quant::DequantizeRow(q.data(), static_cast<int64_t>(row.size()), scale,
                       back.data());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - row[i]), scale * 0.5f + 1e-7f) << i;
    EXPECT_GE(q[i], -127);  // -128 is never produced
  }
}

TEST(Int8QuantTest, ZeroRowQuantizesToZeroScale) {
  const std::vector<float> zeros(16, 0.0f);
  std::vector<int8_t> q(zeros.size());
  const float scale = quant::QuantizeRowAbsMax(zeros.data(), 16, q.data());
  EXPECT_EQ(scale, 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(Int8QuantTest, PerColumnScalesMatchColumnAbsMax) {
  const int64_t rows = 9, cols = 5;
  const std::vector<float> w = RandVec(rows * cols, 11);
  const quant::QuantizedMatrix m = quant::QuantizePerColumn(w.data(), rows,
                                                            cols);
  ASSERT_EQ(m.rows, rows);
  ASSERT_EQ(m.cols, cols);
  for (int64_t j = 0; j < cols; ++j) {
    float absmax = 0.0f;
    for (int64_t i = 0; i < rows; ++i) {
      absmax = std::max(absmax, std::abs(w[static_cast<size_t>(i * cols + j)]));
    }
    EXPECT_NEAR(m.scales[static_cast<size_t>(j)], absmax / 127.0f, 1e-7f);
    for (int64_t i = 0; i < rows; ++i) {
      const float back =
          static_cast<float>(m.q[static_cast<size_t>(i * cols + j)]) *
          m.scales[static_cast<size_t>(j)];
      EXPECT_LE(std::abs(back - w[static_cast<size_t>(i * cols + j)]),
                m.scales[static_cast<size_t>(j)] * 0.5f + 1e-7f);
    }
  }
}

// ---------------------------------------------------------------------------
// packed int8 GEMM
// ---------------------------------------------------------------------------

struct QGemmCase {
  int64_t m, n, k;
};

// Edge-heavy size sweep: micro-tile remainders in every dimension, odd k
// (the packed kernel walks k in int16 pairs), tiny and empty extents.
const QGemmCase kQGemmCases[] = {
    {1, 1, 1},  {6, 16, 2},  {7, 17, 3},   {5, 15, 64}, {12, 32, 63},
    {48, 64, 256}, {50, 70, 100}, {3, 130, 257}, {64, 64, 0},
};

TEST(QGemmTest, BlockedMatchesReferenceBitwise) {
  for (const QGemmCase& c : kQGemmCases) {
    const std::vector<float> af = RandVec(c.m * c.k, 21);
    std::vector<int8_t> a;
    std::vector<float> a_scales;
    QuantizeRows(af, c.m, c.k, &a, &a_scales);
    const std::vector<float> wf = RandVec(c.k * c.n, 22);
    const quant::QuantizedMatrix w =
        quant::QuantizePerColumn(wf.data(), c.k, c.n);

    std::vector<float> got(static_cast<size_t>(c.m * c.n), -99.0f);
    std::vector<float> want(static_cast<size_t>(c.m * c.n), 99.0f);
    ops::QGemmInt8(c.m, c.n, c.k, a.data(), a_scales.data(), w.q.data(),
                   w.scales.data(), got.data());
    ops::QGemmInt8Reference(c.m, c.n, c.k, a.data(), a_scales.data(),
                            w.q.data(), w.scales.data(), want.data());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "m=" << c.m << " n=" << c.n << " k=" << c.k << " i=" << i;
    }
  }
}

TEST(QGemmTest, BitwiseIdenticalAcrossThreadCountsAndDispatch) {
  const int64_t m = 53, n = 67, k = 129;
  const std::vector<float> af = RandVec(m * k, 31);
  std::vector<int8_t> a;
  std::vector<float> a_scales;
  QuantizeRows(af, m, k, &a, &a_scales);
  const quant::QuantizedMatrix w =
      quant::QuantizePerColumn(RandVec(k * n, 32).data(), k, n);

  std::vector<float> base(static_cast<size_t>(m * n));
  {
    ScopedDegree d(1);
    ScopedSimd simd(false);
    ops::QGemmInt8(m, n, k, a.data(), a_scales.data(), w.q.data(),
                   w.scales.data(), base.data());
  }
  for (int degree : {2, 8}) {
    for (bool simd_on : {false, true}) {
      ScopedDegree d(degree);
      ScopedSimd simd(simd_on);
      std::vector<float> got(static_cast<size_t>(m * n), -1.0f);
      ops::QGemmInt8(m, n, k, a.data(), a_scales.data(), w.q.data(),
                     w.scales.data(), got.data());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], base[i]) << "degree=" << degree
                                   << " simd=" << simd_on << " i=" << i;
      }
    }
  }
}

TEST(QGemmTest, TracksF32GemmWithinQuantizationError) {
  const int64_t m = 24, n = 40, k = 96;
  const std::vector<float> af = RandVec(m * k, 41);
  const std::vector<float> wf = RandVec(k * n, 42);
  std::vector<int8_t> a;
  std::vector<float> a_scales;
  QuantizeRows(af, m, k, &a, &a_scales);
  const quant::QuantizedMatrix w = quant::QuantizePerColumn(wf.data(), k, n);

  std::vector<float> exact(static_cast<size_t>(m * n));
  ops::GemmReference(ops::GemmTranspose::kNN, m, n, k, af.data(), wf.data(),
                     exact.data());
  std::vector<float> approx(static_cast<size_t>(m * n));
  ops::QGemmInt8(m, n, k, a.data(), a_scales.data(), w.q.data(),
                 w.scales.data(), approx.data());

  // Worst-case dot-product error: each operand is off by <= scale/2, so the
  // product error per term is bounded by (|a|+|b|+scale/2) * scale/2; a loose
  // but safe bound is k * (sa/2 * |b|max + sb/2 * |a|max + sa*sb/4).
  for (int64_t i = 0; i < m; ++i) {
    const float sa = a_scales[static_cast<size_t>(i)];
    for (int64_t j = 0; j < n; ++j) {
      const float sb = w.scales[static_cast<size_t>(j)];
      const float bound = static_cast<float>(k) *
                          (sa * 63.5f * sb + sb * 63.5f * sa +
                           sa * sb * 0.25f) + 1e-5f;
      EXPECT_LE(std::abs(approx[static_cast<size_t>(i * n + j)] -
                         exact[static_cast<size_t>(i * n + j)]),
                bound) << i << "," << j;
    }
  }
}

TEST(QGemmTest, FusedEpilogueMatchesReferenceIncludingPreActivation) {
  const int64_t m = 14, n = 33, k = 50;
  const std::vector<float> af = RandVec(m * k, 51);
  std::vector<int8_t> a;
  std::vector<float> a_scales;
  QuantizeRows(af, m, k, &a, &a_scales);
  const quant::QuantizedMatrix w =
      quant::QuantizePerColumn(RandVec(k * n, 52).data(), k, n);
  const std::vector<float> bias = RandVec(n, 53);

  for (ops::EpilogueKind kind :
       {ops::EpilogueKind::kBias, ops::EpilogueKind::kBiasRelu,
        ops::EpilogueKind::kBiasTanh, ops::EpilogueKind::kBiasGelu}) {
    ops::Epilogue ep;
    ep.kind = kind;
    ep.bias = bias.data();
    std::vector<float> pre_got(static_cast<size_t>(m * n), -5.0f);
    std::vector<float> pre_want(static_cast<size_t>(m * n), 5.0f);
    std::vector<float> got(static_cast<size_t>(m * n));
    std::vector<float> want(static_cast<size_t>(m * n));

    ep.pre_activation = pre_got.data();
    ops::QGemmInt8(m, n, k, a.data(), a_scales.data(), w.q.data(),
                   w.scales.data(), got.data(), ep);
    ep.pre_activation = pre_want.data();
    ops::QGemmInt8Reference(m, n, k, a.data(), a_scales.data(), w.q.data(),
                            w.scales.data(), want.data(), ep);
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << static_cast<int>(kind) << " i=" << i;
      ASSERT_EQ(pre_got[i], pre_want[i]) << static_cast<int>(kind);
    }
  }
}

// ---------------------------------------------------------------------------
// quantized dense ops / layer
// ---------------------------------------------------------------------------

TEST(QuantizedDenseTest, TracksF32DenseForward) {
  Rng rng(61);
  Tensor x = Tensor::Randn(Shape({8, 32}), &rng, 0.5f);
  Tensor w = Tensor::Randn(Shape({32, 16}), &rng, 0.2f);
  Tensor b = Tensor::Randn(Shape({16}), &rng, 0.1f);
  const quant::QuantizedMatrix qw =
      quant::QuantizePerColumn(w.data(), 32, 16);

  Tensor exact = ops::DenseForward(x, w, b, ops::EpilogueKind::kBiasGelu,
                                   nullptr);
  Tensor approx = ops::QuantizedDenseForward(x, qw, b,
                                             ops::EpilogueKind::kBiasGelu);
  ASSERT_EQ(approx.shape(), exact.shape());
  // GELU is 1-Lipschitz-ish on this range; the pre-activation error is what
  // the quantization bound above controls. Empirically ~1e-2 here; assert a
  // loose digit of headroom.
  EXPECT_LE(Tensor::MaxAbsDiff(approx, exact), 0.15f);
}

TEST(QuantizedDenseTest, RoundTripF16MatchesScalarConversion) {
  Rng rng(62);
  Tensor x = Tensor::Randn(Shape({5, 7}), &rng, 3.0f);
  Tensor r = ops::RoundTripF16(x);
  ASSERT_EQ(r.shape(), x.shape());
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_EQ(r.at(i), quant::F16ToF32(quant::F32ToF16(x.at(i)))) << i;
  }
}

TEST(QuantizedDenseLayerTest, ForwardQuantizedModes) {
  Rng rng(63);
  nn::DenseLayer layer("d", 24, 12, nn::Activation::kGelu, &rng);
  Tensor x = Tensor::Randn(Shape({6, 24}), &rng, 0.7f);
  Tensor f32 = layer.Forward({&x}, nullptr);

  {
    quant::ScopedQuantMode mode(quant::QuantMode::kOff);
    Tensor off = layer.ForwardQuantized({&x});
    EXPECT_EQ(Tensor::MaxAbsDiff(off, f32), 0.0f);
  }
  {
    quant::ScopedQuantMode mode(quant::QuantMode::kInt8);
    Tensor q = layer.ForwardQuantized({&x});
    ASSERT_EQ(q.shape(), f32.shape());
    EXPECT_GT(Tensor::MaxAbsDiff(q, f32), 0.0f);  // actually quantized
    EXPECT_LE(Tensor::MaxAbsDiff(q, f32), 0.15f);
    // Deterministic: the lazily built weight cache returns the same bits.
    Tensor again = layer.ForwardQuantized({&x});
    EXPECT_EQ(Tensor::MaxAbsDiff(again, q), 0.0f);
  }
  {
    quant::ScopedQuantMode mode(quant::QuantMode::kF16);
    Tensor h = layer.ForwardQuantized({&x});
    ASSERT_EQ(h.shape(), f32.shape());
    EXPECT_LE(Tensor::MaxAbsDiff(h, f32), 0.05f);
  }
}

TEST(QuantizedTransformerBlockTest, ForwardQuantizedModes) {
  Rng rng(64);
  nn::TransformerBlockLayer block("t", /*hidden=*/16, /*heads=*/2,
                                  /*ffn_dim=*/32, &rng);
  Tensor x = Tensor::Randn(Shape({2, 4, 16}), &rng, 0.5f);
  Tensor f32 = block.Forward({&x}, nullptr);

  {
    quant::ScopedQuantMode mode(quant::QuantMode::kOff);
    Tensor off = block.ForwardQuantized({&x});
    EXPECT_EQ(Tensor::MaxAbsDiff(off, f32), 0.0f);
  }
  {
    quant::ScopedQuantMode mode(quant::QuantMode::kInt8);
    Tensor q = block.ForwardQuantized({&x});
    ASSERT_EQ(q.shape(), f32.shape());
    EXPECT_GT(Tensor::MaxAbsDiff(q, f32), 0.0f);  // the int8 path engaged
    // Layer norms bound the block output; quantizing six projections still
    // tracks the f32 features closely at these scales.
    EXPECT_LE(Tensor::MaxAbsDiff(q, f32), 0.3f);
    Tensor again = block.ForwardQuantized({&x});
    EXPECT_EQ(Tensor::MaxAbsDiff(again, q), 0.0f);
  }
  {
    quant::ScopedQuantMode mode(quant::QuantMode::kF16);
    Tensor h = block.ForwardQuantized({&x});
    ASSERT_EQ(h.shape(), f32.shape());
    EXPECT_GT(Tensor::MaxAbsDiff(h, f32), 0.0f);
    EXPECT_LE(Tensor::MaxAbsDiff(h, f32), 0.05f);
  }
}

// ---------------------------------------------------------------------------
// v3 quantized shards
// ---------------------------------------------------------------------------

class QuantShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nautilus_quant_shard_" + std::string(::testing::UnitTest::
                                                      GetInstance()
                                                          ->current_test_info()
                                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static fs::path FindShard(const fs::path& dir) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".tns") return entry.path();
    }
    return {};
  }

  static void FlipByte(const fs::path& path, int64_t offset) {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    unsigned char byte = 0;
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
    byte ^= 0x04;
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
    std::fclose(f);
  }

  fs::path dir_;
};

TEST_F(QuantShardTest, Int8PutGetRoundTripWithinScale) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  Rng rng(71);
  Tensor t = Tensor::Randn(Shape({10, 33}), &rng, 2.0f);
  ASSERT_TRUE(store.Put("feed", t, storage::ShardDtype::kInt8).ok());
  EXPECT_EQ(store.DtypeOf("feed"), storage::ShardDtype::kInt8);

  auto loaded = store.Get("feed");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->shape(), t.shape());  // logical f32 shape preserved
  for (int64_t r = 0; r < 10; ++r) {
    float absmax = 0.0f;
    for (int64_t c = 0; c < 33; ++c) {
      absmax = std::max(absmax, std::abs(t.at(r * 33 + c)));
    }
    const float scale = absmax / 127.0f;
    for (int64_t c = 0; c < 33; ++c) {
      EXPECT_LE(std::abs(loaded->at(r * 33 + c) - t.at(r * 33 + c)),
                scale * 0.5f + 1e-7f) << r << "," << c;
    }
  }
}

TEST_F(QuantShardTest, F16PutGetRoundTrip) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  Rng rng(72);
  Tensor t = Tensor::Randn(Shape({4, 9}), &rng, 10.0f);
  ASSERT_TRUE(store.Put("feed", t, storage::ShardDtype::kF16).ok());
  EXPECT_EQ(store.DtypeOf("feed"), storage::ShardDtype::kF16);
  auto loaded = store.Get("feed");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->shape(), t.shape());
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_EQ(loaded->at(i), quant::F16ToF32(quant::F32ToF16(t.at(i)))) << i;
  }
}

TEST_F(QuantShardTest, QuantizedShardsShrinkOnDisk) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  Rng rng(73);
  Tensor t = Tensor::Randn(Shape({64, 256}), &rng, 1.0f);
  ASSERT_TRUE(store.Put("f32", t, storage::ShardDtype::kF32).ok());
  ASSERT_TRUE(store.Put("int8", t, storage::ShardDtype::kInt8).ok());
  ASSERT_TRUE(store.Put("f16", t, storage::ShardDtype::kF16).ok());
  // Acceptance bar: quantized feeds at most half the f32 bytes (headers and
  // footers included). int8 actually lands near 0.26x here.
  EXPECT_LE(store.SizeBytes("int8"), store.SizeBytes("f32") / 2);
  EXPECT_LE(store.SizeBytes("f16"), store.SizeBytes("f32") / 2 + 64);
  EXPECT_LT(store.SizeBytes("int8"), store.SizeBytes("f16"));
}

TEST_F(QuantShardTest, AppendRowsExtendsInt8ShardAndStoredDtypeWins) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  Rng rng(74);
  Tensor a = Tensor::Randn(Shape({3, 8}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({2, 8}), &rng, 1.0f);
  ASSERT_TRUE(store.AppendRows("feed", a, storage::ShardDtype::kInt8).ok());
  // Caller asks for f32 on the second append; the stored dtype must win so
  // a shard never mixes encodings across cycles.
  ASSERT_TRUE(store.AppendRows("feed", b, storage::ShardDtype::kF32).ok());
  EXPECT_EQ(store.DtypeOf("feed"), storage::ShardDtype::kInt8);
  EXPECT_EQ(store.NumRows("feed"), 5);

  auto all = store.Get("feed");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->shape(), Shape({5, 8}));
  // Row-sliced forced-disk read of the appended rows decodes identically.
  auto tail = store.GetRows("feed", 3, 5);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->shape(), Shape({2, 8}));
  for (int64_t i = 0; i < tail->NumElements(); ++i) {
    EXPECT_EQ(tail->at(i), all->at(3 * 8 + i)) << i;
  }
}

TEST_F(QuantShardTest, BitflipInRowScaleFailsEveryReadPath) {
  storage::IoStats stats;
  Rng rng(75);
  Tensor t = Tensor::Randn(Shape({6, 16}), &rng, 1.0f);
  {
    storage::TensorStore store(dir_.string(), &stats);
    ASSERT_TRUE(store.Put("feed", t, storage::ShardDtype::kInt8).ok());
  }
  // v3 rank-2 header: magic(8) + dtype(8) + rank(8) + dims(2*8) = 40 bytes;
  // the first row's f32 absmax scale is bytes [40, 44). Flip a scale bit —
  // the CRC covers scales, so a wrong scale must never decode silently.
  const fs::path shard = FindShard(dir_);
  ASSERT_FALSE(shard.empty());
  FlipByte(shard, 41);

  storage::TensorStore store(dir_.string(), &stats);  // fresh cache
  auto whole = store.Get("feed");
  EXPECT_FALSE(whole.ok());
  auto slice = store.GetRows("feed", 4, 6);  // flip is OUTSIDE these rows
  EXPECT_FALSE(slice.ok());

  storage::ScrubReport report = store.Scrub();
  EXPECT_EQ(report.quarantined, 1);
  EXPECT_FALSE(store.Contains("feed"));
}

TEST_F(QuantShardTest, V3AndLegacyF32ShardsCoexist) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  Rng rng(76);
  Tensor t = Tensor::Randn(Shape({5, 12}), &rng, 1.0f);
  ASSERT_TRUE(store.Put("plain", t).ok());  // default dtype: v2 f32
  ASSERT_TRUE(store.Put("quant", t, storage::ShardDtype::kInt8).ok());
  EXPECT_EQ(store.DtypeOf("plain"), storage::ShardDtype::kF32);
  EXPECT_EQ(store.DtypeOf("quant"), storage::ShardDtype::kInt8);

  auto plain = store.Get("plain");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Tensor::MaxAbsDiff(*plain, t), 0.0f);  // f32 path stays lossless
  auto quantized = store.Get("quant");
  ASSERT_TRUE(quantized.ok());
  EXPECT_EQ(quantized->shape(), t.shape());

  storage::ScrubReport report = store.Scrub();
  EXPECT_EQ(report.checked, 2);
  EXPECT_EQ(report.ok, 2);
  EXPECT_EQ(report.quarantined, 0);
}

TEST(ShardRowBytesTest, EncodingSizes) {
  EXPECT_EQ(storage::ShardRowBytes(storage::ShardDtype::kF32, 100), 400);
  EXPECT_EQ(storage::ShardRowBytes(storage::ShardDtype::kInt8, 100), 104);
  EXPECT_EQ(storage::ShardRowBytes(storage::ShardDtype::kF16, 100), 200);
}

}  // namespace
}  // namespace nautilus
