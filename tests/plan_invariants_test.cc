// Parameterized property tests across all five workloads: structural
// invariants of optimized plans, simulator monotonicity, and the
// equivalence of Nautilus vs Current Practice on real training for every
// workload family (not just feature transfer).
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "nautilus/core/memory_estimator.h"
#include "nautilus/core/planner.h"
#include "nautilus/core/simulator.h"
#include "nautilus/nn/layer.h"
#include "nautilus/workloads/runner.h"

namespace nautilus {
namespace workloads {
namespace {

class PlanInvariantsTest : public ::testing::TestWithParam<WorkloadId> {};

// Every structural invariant an ExecutionGroup must satisfy.
void CheckGroupInvariants(const core::MultiModelGraph& mm,
                          const core::ExecutionGroup& group) {
  ASSERT_FALSE(group.nodes.empty());
  ASSERT_FALSE(group.branches.empty());
  std::set<int> outputs;
  for (const core::PlanBranch& branch : group.branches) {
    ASSERT_GE(branch.output_node, 0);
    ASSERT_LT(branch.output_node, static_cast<int>(group.nodes.size()));
    EXPECT_TRUE(outputs.insert(branch.output_node).second)
        << "two branches share an output node";
    EXPECT_EQ(branch.hp.batch_size, group.batch_size);
  }
  for (size_t v = 0; v < group.nodes.size(); ++v) {
    const core::PlanNode& node = group.nodes[v];
    EXPECT_NE(node.action, core::NodeAction::kPruned)
        << "plans must only retain non-pruned nodes";
    EXPECT_FALSE(node.branches_using.empty())
        << "node " << v << " serves no branch (dead code in plan)";
    if (node.action == core::NodeAction::kComputed) {
      EXPECT_GE(node.compute_cost_flops, 0.0);
      for (int p : node.parents) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, static_cast<int>(v)) << "non-topological parent";
      }
    } else {
      EXPECT_TRUE(node.parents.empty()) << "loaded node with parents";
      EXPECT_GT(node.load_bytes, 0.0);
      if (!node.is_raw_input) {
        EXPECT_FALSE(node.store_key.empty());
        EXPECT_GE(mm.UnitByHash(node.expr_hash), 0);
      }
    }
  }
}

TEST_P(PlanInvariantsTest, OptimizedPlansAreWellFormed) {
  nn::ProfileOnlyScope profile_only;
  BuiltWorkload built = BuildWorkload(GetParam(), Scale::kPaper, 3);
  core::SystemConfig config;
  config.expected_max_records = 5000;
  core::MultiModelGraph mm(&built.workload, config);
  core::PlannedWorkload plan = core::PlanWorkload(
      mm, core::MaterializationMode::kOptimized, /*enable_fusion=*/true,
      config);

  std::set<int> covered;
  for (const core::ExecutionGroup& group : plan.fusion.groups) {
    CheckGroupInvariants(mm, group);
    for (const core::PlanBranch& branch : group.branches) {
      EXPECT_TRUE(covered.insert(branch.model_index).second);
    }
    // Fused groups must respect the paper's memory budget.
    EXPECT_LE(core::EstimatePeakMemory(group, config).total(),
              config.memory_budget_bytes * 1.0 + 1e6)
        << group.DebugString();
  }
  EXPECT_EQ(covered.size(), built.workload.size());

  // The storage budget holds for the final materialized set.
  double bytes = 0.0;
  for (size_t u = 0; u < plan.choice.materialize.size(); ++u) {
    if (plan.choice.materialize[u]) {
      bytes += mm.units()[u].disk_bytes *
               static_cast<double>(config.expected_max_records);
    }
  }
  EXPECT_LE(bytes, config.disk_budget_bytes + 1e-6);
}

TEST_P(PlanInvariantsTest, NautilusPlanNeverCostsMoreThanAblations) {
  nn::ProfileOnlyScope profile_only;
  BuiltWorkload built = BuildWorkload(GetParam(), Scale::kPaper, 3);
  core::SystemConfig config;
  config.expected_max_records = 5000;
  core::MultiModelGraph mm(&built.workload, config);
  const double full =
      core::PlanWorkload(mm, core::MaterializationMode::kOptimized, true,
                         config)
          .score_seconds;
  const double no_fuse =
      core::PlanWorkload(mm, core::MaterializationMode::kOptimized, false,
                         config)
          .score_seconds;
  const double no_mat =
      core::PlanWorkload(mm, core::MaterializationMode::kNone, true, config)
          .score_seconds;
  const double neither =
      core::PlanWorkload(mm, core::MaterializationMode::kNone, false, config)
          .score_seconds;
  EXPECT_LE(full, no_fuse + 1e-9);
  EXPECT_LE(full, no_mat + 1e-9);
  EXPECT_LE(no_fuse, neither + 1e-9);
  EXPECT_LE(no_mat, neither + 1e-9);
}

TEST_P(PlanInvariantsTest, SimulatedTrainingMonotoneInRecords) {
  nn::ProfileOnlyScope profile_only;
  BuiltWorkload built = BuildWorkload(GetParam(), Scale::kPaper, 3);
  core::SystemConfig config;
  config.expected_max_records = 5000;
  core::MultiModelGraph mm(&built.workload, config);
  core::PlannedWorkload plan = core::PlanWorkload(
      mm, core::MaterializationMode::kOptimized, true, config);
  const core::ExecutionGroup& group = plan.fusion.groups.front();
  double prev = 0.0;
  for (int64_t records : {500, 1000, 2000, 4000}) {
    const double seconds =
        core::SimulateGroupTraining(group, records, records / 4, 1e6, config)
            .total_seconds();
    EXPECT_GT(seconds, prev);
    prev = seconds;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PlanInvariantsTest,
                         ::testing::Values(WorkloadId::kFtr1,
                                           WorkloadId::kFtr2,
                                           WorkloadId::kFtr3, WorkloadId::kAtr,
                                           WorkloadId::kFtu),
                         [](const auto& info) {
                           return std::string(WorkloadName(info.param))
                                      .substr(0, 3) +
                                  (info.param == WorkloadId::kFtr1   ? "1"
                                   : info.param == WorkloadId::kFtr2 ? "2"
                                   : info.param == WorkloadId::kFtr3 ? "3"
                                                                     : "");
                         });

// ---------------------------------------------------------------------------
// Equivalence for every workload family at mini scale, on real training.
// ---------------------------------------------------------------------------

class EquivalenceTest : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(EquivalenceTest, NautilusMatchesNaiveTraining) {
  const WorkloadId id = GetParam();
  core::SystemConfig config;
  config.expected_max_records = 400;
  config.disk_budget_bytes = 256.0 * (1 << 20);
  config.memory_budget_bytes = 2.0 * (1ull << 30);
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  RunParams params;
  params.cycles = 2;
  params.records_per_cycle = 60;
  params.train_fraction = 0.75;

  MeasuredRun runs[2];
  const Approach approaches[2] = {Approach::kCurrentPractice,
                                  Approach::kNautilus};
  const auto base = std::filesystem::temp_directory_path() /
                    ("nautilus_equiv_" + std::string(WorkloadName(id)));
  std::filesystem::remove_all(base);
  for (int i = 0; i < 2; ++i) {
    // Fresh identically-seeded sources per run (training mutates weights).
    BuiltWorkload built = BuildWorkload(id, Scale::kMini, 5);
    // Subset for speed: every 5th candidate.
    core::Workload subset;
    for (size_t m = 0; m < built.workload.size(); m += 5) {
      subset.push_back(built.workload[m]);
    }
    built.workload = std::move(subset);
    data::LabeledDataset pool = MakePoolFor(built, 150, 7);
    runs[i] = MeasureRun(built, approaches[i], config, params, pool,
                         (base / std::to_string(i)).string(), /*seed=*/3);
  }
  std::filesystem::remove_all(base);
  ASSERT_EQ(runs[0].cycles.size(), runs[1].cycles.size());
  for (size_t k = 0; k < runs[0].cycles.size(); ++k) {
    EXPECT_NEAR(runs[0].cycles[k].best_accuracy,
                runs[1].cycles[k].best_accuracy, 1e-5)
        << WorkloadName(id) << " cycle " << k;
    EXPECT_EQ(runs[0].cycles[k].best_model, runs[1].cycles[k].best_model)
        << WorkloadName(id) << " cycle " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EquivalenceTest,
                         ::testing::Values(WorkloadId::kFtr3, WorkloadId::kAtr,
                                           WorkloadId::kFtu),
                         [](const auto& info) {
                           return info.param == WorkloadId::kFtr3  ? "FTR3"
                                  : info.param == WorkloadId::kAtr ? "ATR"
                                                                   : "FTU";
                         });

}  // namespace
}  // namespace workloads
}  // namespace nautilus
