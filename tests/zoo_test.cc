#include <gtest/gtest.h>

#include "nautilus/graph/executor.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/random.h"
#include "nautilus/zoo/bert_like.h"
#include "nautilus/zoo/resnet_like.h"

namespace nautilus {
namespace zoo {
namespace {

Tensor RandomTokenBatch(const BertConfig& cfg, int64_t batch, Rng* rng) {
  Tensor ids(Shape({batch, cfg.seq_len}));
  for (int64_t i = 0; i < ids.NumElements(); ++i) {
    ids.at(i) = static_cast<float>(rng->UniformInt(cfg.vocab));
  }
  return ids;
}

TEST(BertLikeTest, SourceGraphStructure) {
  BertLikeModel source(BertConfig::TinyScale(), 1);
  graph::ModelGraph g = source.BuildSourceGraph();
  // input + embedding + blocks.
  EXPECT_EQ(g.num_nodes(), 2 + source.config().num_blocks);
  auto mask = g.MaterializableMask();
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_TRUE(mask[static_cast<size_t>(i)]) << "node " << i;
  }
}

TEST(BertLikeTest, PretrainedWeightsDeterministic) {
  BertLikeModel a(BertConfig::TinyScale(), 42);
  BertLikeModel b(BertConfig::TinyScale(), 42);
  Rng rng(7);
  Tensor ids = RandomTokenBatch(a.config(), 2, &rng);
  graph::ModelGraph ga = a.BuildSourceGraph();
  graph::ModelGraph gb = b.BuildSourceGraph();
  graph::Executor ea(&ga), eb(&gb);
  ea.Forward({{ga.input_ids()[0], ids}}, false);
  eb.Forward({{gb.input_ids()[0], ids}}, false);
  EXPECT_EQ(Tensor::MaxAbsDiff(ea.Output(ga.output_ids()[0]),
                               eb.Output(gb.output_ids()[0])),
            0.0f);
}

class FeatureTransferTest : public ::testing::TestWithParam<BertFeature> {};

TEST_P(FeatureTransferTest, BuildsValidModelAndRuns) {
  BertLikeModel source(BertConfig::TinyScale(), 2);
  graph::ModelGraph m = BuildBertFeatureTransferModel(
      source, GetParam(), /*num_classes=*/3, "ftr", 99);
  m.Validate();

  // All pretrained layers materializable; new layers not.
  auto mask = m.MaterializableMask();
  int materializable = 0;
  for (bool b : mask) materializable += b ? 1 : 0;
  // input + embedding + blocks (+ possibly the frozen combiner node).
  EXPECT_GE(materializable, 2 + source.config().num_blocks);

  Rng rng(3);
  Tensor ids = RandomTokenBatch(source.config(), 2, &rng);
  graph::Executor ex(&m);
  ex.Forward({{m.input_ids()[0], ids}}, false);
  const Tensor& logits = ex.Output(m.output_ids()[0]);
  EXPECT_EQ(logits.shape(), Shape({2, 3}));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FeatureTransferTest,
    ::testing::Values(BertFeature::kEmbedding, BertFeature::kSecondLastHidden,
                      BertFeature::kLastHidden, BertFeature::kSumLast4,
                      BertFeature::kConcatLast4, BertFeature::kSumAllHidden));

TEST(BertLikeTest, FeatureTransferSharesFrozenExpressions) {
  BertLikeModel source(BertConfig::TinyScale(), 4);
  graph::ModelGraph m1 = BuildBertFeatureTransferModel(
      source, BertFeature::kLastHidden, 3, "m1", 10);
  graph::ModelGraph m2 = BuildBertFeatureTransferModel(
      source, BertFeature::kSumLast4, 3, "m2", 11);
  auto h1 = m1.ExpressionHashes();
  auto h2 = m2.ExpressionHashes();
  // The last pretrained block is node index (1 + num_blocks) in both.
  const size_t last_block = static_cast<size_t>(1 + source.config().num_blocks);
  EXPECT_EQ(h1[last_block], h2[last_block]);
}

TEST(BertLikeTest, AdapterModelMaterializability) {
  BertLikeModel source(BertConfig::TinyScale(), 5);
  // Adapters on the last block only: everything below stays materializable,
  // the adapter and anything above it does not.
  graph::ModelGraph m =
      BuildBertAdapterModel(source, /*num_adapted=*/1, 3, "atr", 12);
  auto mask = m.MaterializableMask();
  const auto& nodes = m.nodes();
  int first_nonmat = -1;
  for (int i = 0; i < m.num_nodes(); ++i) {
    if (!mask[static_cast<size_t>(i)]) {
      first_nonmat = i;
      break;
    }
  }
  ASSERT_GE(first_nonmat, 0);
  EXPECT_EQ(nodes[static_cast<size_t>(first_nonmat)].layer->type_name(),
            "Adapter");
  for (int i = first_nonmat; i < m.num_nodes(); ++i) {
    EXPECT_FALSE(mask[static_cast<size_t>(i)]) << "node " << i;
  }
}

TEST(BertLikeTest, FineTuneCloneDoesNotCorruptSource) {
  BertLikeModel source(BertConfig::TinyScale(), 6);
  graph::ModelGraph m =
      BuildBertFineTuneModel(source, /*num_unfrozen=*/1, 3, "ftu", 13);
  // Train one step; the shared pretrained block weights must not change.
  Rng rng(8);
  Tensor ids = RandomTokenBatch(source.config(), 4, &rng);
  std::vector<int32_t> labels = {0, 1, 2, 0};
  graph::Executor ex(&m);
  auto params = ex.TrainableParams();
  ASSERT_FALSE(params.empty());

  // Snapshot source block weights.
  auto* last_block = source.blocks().back().get();
  std::vector<Tensor> before;
  for (nn::Parameter* p : last_block->Params()) before.push_back(p->value);

  ex.ZeroGrads();
  ex.Forward({{m.input_ids()[0], ids}}, true);
  Tensor probs = ops::SoftmaxForward(ex.Output(m.output_ids()[0]));
  Tensor dlogits;
  ops::SoftmaxCrossEntropy(probs, labels, &dlogits);
  ex.Backward({{m.output_ids()[0], dlogits}});
  for (nn::Parameter* p : params) {
    for (int64_t i = 0; i < p->value.NumElements(); ++i) {
      p->value.at(i) -= 0.1f * p->grad.at(i);
    }
  }

  auto after = last_block->Params();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(before[i], after[i]->value), 0.0f)
        << "pretrained weights were modified by fine-tuning a clone";
  }
}

TEST(BertLikeTest, FineTuneMaterializableFrontierMatchesFreezeDepth) {
  BertLikeModel source(BertConfig::TinyScale(), 7);
  for (int64_t unfrozen = 0; unfrozen <= source.config().num_blocks;
       ++unfrozen) {
    graph::ModelGraph m = BuildBertFineTuneModel(
        source, unfrozen, 3, "ftu" + std::to_string(unfrozen), 20 + unfrozen);
    auto mask = m.MaterializableMask();
    int materializable = 0;
    for (bool b : mask) materializable += b ? 1 : 0;
    // input + embedding + frozen blocks. With zero unfrozen blocks the
    // parameter-free SelectToken head node is also materializable
    // (Definition 2.4: frozen with all-materializable parents).
    const int head_extra = unfrozen == 0 ? 1 : 0;
    EXPECT_EQ(materializable,
              2 + static_cast<int>(source.config().num_blocks - unfrozen) +
                  head_extra);
  }
}

TEST(ResNetLikeTest, SourceGraphRunsForward) {
  ResNetLikeModel source(ResNetConfig::MiniScale(), 9);
  graph::ModelGraph g = source.BuildSourceGraph();
  Rng rng(10);
  Tensor images = Tensor::Randn(
      Shape({2, source.config().in_channels, source.config().image_size,
             source.config().image_size}),
      &rng, 1.0f);
  graph::Executor ex(&g);
  ex.Forward({{g.input_ids()[0], images}}, false);
  const Tensor& features = ex.Output(g.output_ids()[0]);
  EXPECT_EQ(features.shape().dim(0), 2);
  EXPECT_EQ(features.shape().dim(1), source.feature_channels());
}

TEST(ResNetLikeTest, FineTuneModelTrainsAndClassifies) {
  ResNetLikeModel source(ResNetConfig::MiniScale(), 11);
  graph::ModelGraph m =
      BuildResNetFineTuneModel(source, /*num_unfrozen=*/1, 2, "ftu", 30);
  Rng rng(12);
  Tensor images = Tensor::Randn(
      Shape({4, source.config().in_channels, source.config().image_size,
             source.config().image_size}),
      &rng, 1.0f);
  std::vector<int32_t> labels = {0, 1, 0, 1};
  graph::Executor ex(&m);
  ex.ZeroGrads();
  ex.Forward({{m.input_ids()[0], images}}, true);
  Tensor probs = ops::SoftmaxForward(ex.Output(m.output_ids()[0]));
  EXPECT_EQ(probs.shape(), Shape({4, 2}));
  Tensor dlogits;
  float loss = ops::SoftmaxCrossEntropy(probs, labels, &dlogits);
  EXPECT_GT(loss, 0.0f);
  ex.Backward({{m.output_ids()[0], dlogits}});
}

TEST(ResNetLikeTest, MaterializableCountTracksFreezing) {
  ResNetLikeModel source(ResNetConfig::MiniScale(), 13);
  const int64_t total = source.config().TotalBlocks();
  for (int64_t unfrozen : {int64_t{0}, int64_t{2}, total}) {
    graph::ModelGraph m = BuildResNetFineTuneModel(
        source, unfrozen, 2, "m" + std::to_string(unfrozen), 40 + unfrozen);
    auto mask = m.MaterializableMask();
    int materializable = 0;
    for (bool b : mask) materializable += b ? 1 : 0;
    // input + stem + pool + frozen blocks; with everything frozen the
    // parameter-free GlobalAvgPool head node is materializable too.
    const int head_extra = unfrozen == 0 ? 1 : 0;
    EXPECT_EQ(materializable, 3 + static_cast<int>(total - unfrozen) +
                                  head_extra);
  }
}

TEST(ResNetLikeTest, PaperScaleProfileMatchesResNet50Order) {
  // Profile-only construction at paper scale: no forward pass, just check
  // the FLOP count is in the right ballpark (ResNet-50 is ~4 GFLOPs/image
  // forward at 224x224).
  nn::ProfileOnlyScope profile_only;
  ResNetLikeModel source(ResNetConfig::PaperScale(), 14);
  graph::ModelGraph g = source.BuildSourceGraph();
  auto shapes = g.NodeShapes(1);
  double flops = 0.0;
  for (const auto& node : g.nodes()) {
    if (node.parents.empty()) continue;
    std::vector<Shape> in;
    for (int p : node.parents) in.push_back(shapes[static_cast<size_t>(p)]);
    flops += node.layer->ForwardFlopsPerRecord(in);
  }
  EXPECT_GT(flops, 5e8);
  EXPECT_LT(flops, 2e10);
}

TEST(BertLikeTest, PaperScaleProfileMatchesBertBaseOrder) {
  // BERT-base forward is ~22 GFLOPs at sequence length 128... within 2x.
  nn::ProfileOnlyScope profile_only;
  BertLikeModel source(BertConfig::PaperScale(), 15);
  graph::ModelGraph g = source.BuildSourceGraph();
  auto shapes = g.NodeShapes(1);
  double flops = 0.0;
  for (const auto& node : g.nodes()) {
    if (node.parents.empty()) continue;
    std::vector<Shape> in;
    for (int p : node.parents) in.push_back(shapes[static_cast<size_t>(p)]);
    flops += node.layer->ForwardFlopsPerRecord(in);
  }
  EXPECT_GT(flops, 1e10);
  EXPECT_LT(flops, 5e10);
}

TEST(ProfileOnlyTest, StubParamsKeepShapesWithoutStorage) {
  nn::ProfileOnlyScope profile_only;
  BertLikeModel source(BertConfig::PaperScale(), 16);
  // BERT-base has ~110M parameters; stub construction must report them
  // without allocating.
  int64_t params = source.embedding()->ParamCount();
  for (const auto& b : source.blocks()) params += b->ParamCount();
  EXPECT_GT(params, 80'000'000);
  EXPECT_LT(params, 150'000'000);
  for (nn::Parameter* p : source.blocks()[0]->Params()) {
    EXPECT_TRUE(p->IsStub());
    EXPECT_TRUE(p->value.empty());
  }
}

TEST(ProfileOnlyTest, ScopeRestoresMode) {
  EXPECT_FALSE(nn::ProfileOnlyMode());
  {
    nn::ProfileOnlyScope scope;
    EXPECT_TRUE(nn::ProfileOnlyMode());
  }
  EXPECT_FALSE(nn::ProfileOnlyMode());
}

TEST(ProfileOnlyTest, CloneOfStubStaysStub) {
  nn::ProfileOnlyScope profile_only;
  Rng rng(17);
  nn::DenseLayer d("d", 128, 64, nn::Activation::kNone, &rng);
  auto copy = d.Clone();
  EXPECT_EQ(copy->ParamCount(), d.ParamCount());
  for (nn::Parameter* p : copy->Params()) EXPECT_TRUE(p->IsStub());
}

}  // namespace
}  // namespace zoo
}  // namespace nautilus
