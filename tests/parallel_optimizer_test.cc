// Tests for the ParallelFor abstraction, the parallel matmul's determinism,
// and the optimizer upgrades (weight decay, gradient clipping).
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/nn/optimizer.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/parallel.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int degree : {1, 2, 4, 7}) {
    SetParallelismDegree(degree);
    std::vector<std::atomic<int>> counts(103);
    for (auto& c : counts) c.store(0);
    ParallelFor(103, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        counts[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " degree " << degree;
    }
  }
  SetParallelismDegree(1);
}

TEST(ParallelForTest, EmptyAndMinChunk) {
  SetParallelismDegree(4);
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // min_chunk larger than n forces a single inline call.
  std::atomic<int> ranges{0};
  ParallelFor(5, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 5);
    ranges.fetch_add(1);
  }, /*min_chunk=*/100);
  EXPECT_EQ(ranges.load(), 1);
  SetParallelismDegree(1);
}

TEST(ParallelMatMulTest, DeterministicAcrossDegrees) {
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({37, 23}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({23, 19}), &rng, 1.0f);
  SetParallelismDegree(1);
  Tensor serial = ops::MatMul(a, b);
  for (int degree : {2, 3, 8}) {
    SetParallelismDegree(degree);
    Tensor parallel = ops::MatMul(a, b);
    EXPECT_EQ(Tensor::MaxAbsDiff(serial, parallel), 0.0f)
        << "degree " << degree;
  }
  SetParallelismDegree(1);
}

TEST(GradClipTest, GlobalNormComputedAcrossParams) {
  nn::Parameter a("a", Tensor(Shape({2}), {3.0f, 0.0f}));
  nn::Parameter b("b", Tensor(Shape({1}), {0.0f}));
  a.grad = Tensor(Shape({2}), {3.0f, 0.0f});
  b.grad = Tensor(Shape({1}), {4.0f});
  EXPECT_DOUBLE_EQ(nn::GlobalGradNorm({&a, &b}), 5.0);
}

TEST(GradClipTest, ScalesDownOnlyWhenAboveThreshold) {
  nn::Parameter p("p", Tensor(Shape({2}), {0.0f, 0.0f}));
  p.grad = Tensor(Shape({2}), {3.0f, 4.0f});  // norm 5
  nn::ClipGradientsByGlobalNorm({&p}, 10.0);
  EXPECT_FLOAT_EQ(p.grad.at(0), 3.0f);  // untouched
  nn::ClipGradientsByGlobalNorm({&p}, 2.5);
  EXPECT_NEAR(nn::GlobalGradNorm({&p}), 2.5, 1e-6);
  EXPECT_NEAR(p.grad.at(0) / p.grad.at(1), 0.75, 1e-5);  // direction kept
}

TEST(GradClipTest, ZeroThresholdDisables) {
  nn::Parameter p("p", Tensor(Shape({1}), {0.0f}));
  p.grad = Tensor(Shape({1}), {100.0f});
  nn::ClipGradientsByGlobalNorm({&p}, 0.0);
  EXPECT_FLOAT_EQ(p.grad.at(0), 100.0f);
}

TEST(WeightDecayTest, DecaysTowardZeroWithoutGradients) {
  nn::Parameter p("p", Tensor(Shape({2}), {1.0f, -2.0f}));
  nn::AdamOptimizer adam(/*lr=*/0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/0.5);
  for (int step = 0; step < 50; ++step) {
    p.ZeroGrad();
    adam.Step({&p});
  }
  // With zero gradients the decoupled decay shrinks weights geometrically.
  EXPECT_LT(std::abs(p.value.at(0)), 0.1f);
  EXPECT_LT(std::abs(p.value.at(1)), 0.2f);
}

TEST(WeightDecayTest, ZeroDecayLeavesWeightsAloneWithZeroGrad) {
  nn::Parameter p("p", Tensor(Shape({1}), {1.5f}));
  nn::AdamOptimizer adam(0.1);
  p.ZeroGrad();
  adam.Step({&p});
  EXPECT_FLOAT_EQ(p.value.at(0), 1.5f);
}

TEST(WeightDecayTest, CloneFreshPreservesDecay) {
  nn::AdamOptimizer adam(0.1, 0.9, 0.999, 1e-8, 0.25);
  auto fresh = adam.CloneFresh();
  nn::Parameter p("p", Tensor(Shape({1}), {1.0f}));
  p.ZeroGrad();
  fresh->Step({&p});
  EXPECT_LT(p.value.at(0), 1.0f);  // decay applied by the clone too
}

}  // namespace
}  // namespace nautilus
