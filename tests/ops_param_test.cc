// Parameterized property sweeps over the tensor kernels: reference
// comparisons and algebraic invariants across a grid of shapes, so the
// kernels are exercised far beyond the single-shape unit tests.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "nautilus/tensor/ops.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

// ---------------------------------------------------------------------------
// MatMul family vs a naive triple-loop reference across shapes.
// ---------------------------------------------------------------------------

class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

Tensor NaiveMatMul(const Tensor& a, const Tensor& b, int m, int k, int n) {
  Tensor c(Shape({m, n}));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i * k + p)) * b.at(p * n + j);
      }
      c.at(i * n + j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST_P(MatMulShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  Tensor a = Tensor::Randn(Shape({m, k}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({k, n}), &rng, 1.0f);
  Tensor c = ops::MatMul(a, b);
  EXPECT_LT(Tensor::MaxAbsDiff(c, NaiveMatMul(a, b, m, k, n)),
            1e-4f * static_cast<float>(k));
}

TEST_P(MatMulShapes, TransposedVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k + n));
  Tensor a = Tensor::Randn(Shape({m, k}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({k, n}), &rng, 1.0f);
  // (A B)^T == B^T A^T: check one entry relation via NT/TN forms.
  Tensor ab = ops::MatMul(a, b);
  // NT: a [m,k] x b' [n,k]^T where b' = B^T.
  Tensor bt(Shape({n, k}));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) bt.at(j * k + i) = b.at(i * n + j);
  }
  Tensor ab2 = ops::MatMulNT(a, bt);
  EXPECT_LT(Tensor::MaxAbsDiff(ab, ab2), 1e-4f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatMulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 1, 4), std::make_tuple(8, 8, 8),
                      std::make_tuple(3, 17, 5), std::make_tuple(16, 4, 16),
                      std::make_tuple(2, 33, 9), std::make_tuple(13, 13, 1)));

// ---------------------------------------------------------------------------
// Softmax cross-entropy invariants across class counts and batch sizes.
// ---------------------------------------------------------------------------

class SoftmaxShapes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SoftmaxShapes, ProbabilitiesAndGradientsWellFormed) {
  const auto [batch, classes] = GetParam();
  Rng rng(static_cast<uint64_t>(batch * 31 + classes));
  Tensor logits = Tensor::Randn(Shape({batch, classes}), &rng, 2.0f);
  Tensor probs = ops::SoftmaxForward(logits);
  std::vector<int32_t> labels;
  for (int i = 0; i < batch; ++i) {
    labels.push_back(static_cast<int32_t>(rng.UniformInt(classes)));
  }
  Tensor dlogits;
  const float loss = ops::SoftmaxCrossEntropy(probs, labels, &dlogits);
  EXPECT_GE(loss, 0.0f);
  for (int i = 0; i < batch; ++i) {
    float psum = 0.0f;
    float gsum = 0.0f;
    for (int c = 0; c < classes; ++c) {
      const float p = probs.at(i * classes + c);
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      psum += p;
      gsum += dlogits.at(i * classes + c);
    }
    EXPECT_NEAR(psum, 1.0f, 1e-4f);
    // Softmax-CE gradient rows sum to zero.
    EXPECT_NEAR(gsum, 0.0f, 1e-5f);
  }
  EXPECT_GE(ops::Accuracy(probs, labels), 0.0f);
  EXPECT_LE(ops::Accuracy(probs, labels), 1.0f);
}

INSTANTIATE_TEST_SUITE_P(Grid, SoftmaxShapes,
                         ::testing::Combine(::testing::Values(1, 3, 16),
                                            ::testing::Values(2, 5, 11)));

// ---------------------------------------------------------------------------
// LayerNorm invariants across widths.
// ---------------------------------------------------------------------------

class LayerNormWidths : public ::testing::TestWithParam<int> {};

TEST_P(LayerNormWidths, UnitGammaZeroBetaNormalizes) {
  const int width = GetParam();
  Rng rng(static_cast<uint64_t>(width));
  Tensor x = Tensor::Randn(Shape({4, width}), &rng, 3.0f);
  Tensor gamma = Tensor::Full(Shape({width}), 1.0f);
  Tensor beta = Tensor::Zeros(Shape({width}));
  ops::LayerNormCache cache;
  Tensor y = ops::LayerNormForward(x, gamma, beta, 1e-5f, &cache);
  for (int i = 0; i < 4; ++i) {
    double mean = 0.0;
    double var = 0.0;
    for (int j = 0; j < width; ++j) mean += y.at(i * width + j);
    mean /= width;
    for (int j = 0; j < width; ++j) {
      var += (y.at(i * width + j) - mean) * (y.at(i * width + j) - mean);
    }
    var /= width;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    if (width > 1) {
      EXPECT_NEAR(var, 1.0, 2e-2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, LayerNormWidths,
                         ::testing::Values(2, 3, 8, 17, 64));

// ---------------------------------------------------------------------------
// Attention invariants across (heads, seq, head-dim).
// ---------------------------------------------------------------------------

class AttentionShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AttentionShapes, RowsAreConvexCombinationsOfValues) {
  const auto [heads, seq, dh] = GetParam();
  Rng rng(static_cast<uint64_t>(heads * 97 + seq * 13 + dh));
  const Shape shape({2, heads, seq, dh});
  Tensor q = Tensor::Randn(shape, &rng, 0.8f);
  Tensor k = Tensor::Randn(shape, &rng, 0.8f);
  Tensor v = Tensor::Randn(shape, &rng, 0.8f);
  ops::AttentionCache cache;
  Tensor y = ops::AttentionForward(q, k, v, &cache);
  EXPECT_EQ(y.shape(), shape);
  // Attention probabilities: non-negative, rows sum to 1.
  const int64_t rows = 2 * heads * seq;
  for (int64_t r = 0; r < rows; ++r) {
    float sum = 0.0f;
    for (int s = 0; s < seq; ++s) {
      const float p = cache.probs.at(r * seq + s);
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
  // Output values bounded by min/max of V along the sequence (convexity).
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t hidx = 0; hidx < heads; ++hidx) {
      for (int64_t d = 0; d < dh; ++d) {
        float lo = 1e30f;
        float hi = -1e30f;
        for (int64_t s = 0; s < seq; ++s) {
          const float val =
              v.at(((b * heads + hidx) * seq + s) * dh + d);
          lo = std::min(lo, val);
          hi = std::max(hi, val);
        }
        for (int64_t s = 0; s < seq; ++s) {
          const float out =
              y.at(((b * heads + hidx) * seq + s) * dh + d);
          EXPECT_GE(out, lo - 1e-4f);
          EXPECT_LE(out, hi + 1e-4f);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttentionShapes,
    ::testing::Values(std::make_tuple(1, 1, 4), std::make_tuple(2, 3, 2),
                      std::make_tuple(4, 8, 8), std::make_tuple(1, 16, 1)));

// ---------------------------------------------------------------------------
// Conv2D output shapes and linearity across stride/padding/kernel.
// ---------------------------------------------------------------------------

class ConvShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvShapes, ShapeFormulaAndLinearity) {
  const auto [kernel, stride, padding] = GetParam();
  const int in = 9;
  if (in + 2 * padding < kernel) GTEST_SKIP();
  Rng rng(static_cast<uint64_t>(kernel * 7 + stride * 3 + padding));
  Tensor x = Tensor::Randn(Shape({1, 2, in, in}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({3, 2, kernel, kernel}), &rng, 0.3f);
  Tensor bias(Shape({3}));
  const ops::Conv2DArgs args{.stride = stride, .padding = padding};
  Tensor y = ops::Conv2DForward(x, w, bias, args);
  const int expected = (in + 2 * padding - kernel) / stride + 1;
  EXPECT_EQ(y.shape(), Shape({1, 3, expected, expected}));

  // Linearity in the input: conv(2x) == 2 conv(x) with zero bias.
  Tensor x2 = x;
  ops::ScaleInPlace(2.0f, &x2);
  Tensor y2 = ops::Conv2DForward(x2, w, bias, args);
  Tensor y_scaled = y;
  ops::ScaleInPlace(2.0f, &y_scaled);
  EXPECT_LT(Tensor::MaxAbsDiff(y2, y_scaled), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvShapes,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 1),
                      std::make_tuple(3, 2, 1), std::make_tuple(5, 1, 2),
                      std::make_tuple(3, 3, 0), std::make_tuple(7, 2, 3)));

// ---------------------------------------------------------------------------
// Concat/split and head split/merge round trips across widths.
// ---------------------------------------------------------------------------

class ConcatWidths
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConcatWidths, SplitInvertsConcat) {
  const auto [w1, w2, w3] = GetParam();
  Rng rng(static_cast<uint64_t>(w1 * 100 + w2 * 10 + w3));
  Tensor a = Tensor::Randn(Shape({3, w1}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({3, w2}), &rng, 1.0f);
  Tensor c = Tensor::Randn(Shape({3, w3}), &rng, 1.0f);
  Tensor cat = ops::ConcatLastDim({&a, &b, &c});
  EXPECT_EQ(cat.shape(), Shape({3, w1 + w2 + w3}));
  auto parts = ops::SplitLastDim(cat, {w1, w2, w3});
  EXPECT_EQ(Tensor::MaxAbsDiff(parts[0], a), 0.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(parts[1], b), 0.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(parts[2], c), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConcatWidths,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 2, 6),
                      std::make_tuple(1, 9, 3), std::make_tuple(8, 8, 8)));

class HeadSplits : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(HeadSplits, MergeInvertsSplit) {
  const auto [batch, seq, heads] = GetParam();
  const int dh = 3;
  Rng rng(static_cast<uint64_t>(batch + seq + heads));
  Tensor x = Tensor::Randn(Shape({batch, seq, heads * dh}), &rng, 1.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(ops::MergeHeads(ops::SplitHeads(x, heads)), x),
            0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HeadSplits,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 5, 3),
                      std::make_tuple(4, 2, 8), std::make_tuple(3, 7, 2)));

// ---------------------------------------------------------------------------
// Pooling invariants.
// ---------------------------------------------------------------------------

class PoolKernels : public ::testing::TestWithParam<int> {};

TEST_P(PoolKernels, MaxPoolDominatesAvgOfWindow) {
  const int kernel = GetParam();
  const int in = kernel * 3;
  Rng rng(static_cast<uint64_t>(kernel));
  Tensor x = Tensor::Randn(Shape({1, 2, in, in}), &rng, 1.0f);
  ops::MaxPoolCache cache;
  Tensor y = ops::MaxPool2DForward(x, kernel, &cache);
  EXPECT_EQ(y.shape(), Shape({1, 2, 3, 3}));
  // Every pooled value appears in the input (argmax validity).
  for (int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_EQ(y.at(i), x.at(cache.argmax[static_cast<size_t>(i)]));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PoolKernels, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace nautilus
