// Unit and gradient-check tests for every nn layer and the optimizers.
#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nautilus/nn/basic.h"
#include "nautilus/nn/combine.h"
#include "nautilus/nn/conv.h"
#include "nautilus/nn/optimizer.h"
#include "nautilus/nn/transformer.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace nn {
namespace {

using testing_util::ExpectGradientsClose;

double WeightedSum(const Tensor& t, const Tensor& w) {
  double acc = 0.0;
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    acc += static_cast<double>(t.at(i)) * static_cast<double>(w.at(i));
  }
  return acc;
}

// Checks a layer's input gradient and every parameter gradient against
// finite differences of the weighted-sum objective.
void CheckLayerGradients(Layer* layer, const Tensor& x, uint64_t seed,
                         double eps = 1e-2, double atol = 3e-2,
                         double rtol = 8e-2) {
  Rng rng(seed);
  std::unique_ptr<LayerCache> cache;
  Tensor y = layer->Forward({&x}, &cache);
  Tensor w = Tensor::Randn(y.shape(), &rng, 1.0f);

  layer->ZeroGrads();
  std::vector<Tensor> input_grads = layer->Backward(w, {&x}, *cache);
  ASSERT_EQ(input_grads.size(), 1u);

  auto f_input = [&](const Tensor& probe) {
    std::unique_ptr<LayerCache> c;
    return WeightedSum(layer->Forward({&probe}, &c), w);
  };
  ExpectGradientsClose(f_input, x, input_grads[0], eps, atol, rtol);

  for (Parameter* p : layer->Params()) {
    Tensor analytic = p->grad;
    Tensor original = p->value;
    auto f_param = [&](const Tensor& probe) {
      p->value = probe;
      std::unique_ptr<LayerCache> c;
      double v = WeightedSum(layer->Forward({&x}, &c), w);
      p->value = original;
      return v;
    };
    ExpectGradientsClose(f_param, original, analytic, eps, atol, rtol);
    p->value = original;
  }
}

TEST(DenseLayerTest, ShapesAndFlops) {
  Rng rng(1);
  DenseLayer d("d", 8, 3, Activation::kNone, &rng);
  EXPECT_EQ(d.OutputShape({Shape({5, 8})}), Shape({5, 3}));
  EXPECT_EQ(d.OutputShape({Shape({5, 4, 8})}), Shape({5, 4, 3}));
  // 2*8*3 + 2*3 per row.
  EXPECT_DOUBLE_EQ(d.ForwardFlopsPerRecord({Shape({1, 8})}), 54.0);
  EXPECT_EQ(d.ParamCount(), 8 * 3 + 3);
}

TEST(DenseLayerTest, GradientsAllActivations) {
  Rng rng(2);
  for (Activation act : {Activation::kNone, Activation::kRelu,
                         Activation::kGelu, Activation::kTanh}) {
    DenseLayer d(std::string("d_") + ActivationName(act), 5, 4, act, &rng);
    Tensor x = Tensor::Randn(Shape({3, 5}), &rng, 0.8f);
    CheckLayerGradients(&d, x, 100 + static_cast<uint64_t>(act));
  }
}

TEST(DenseLayerTest, CloneSharesValuesNotUid) {
  Rng rng(3);
  DenseLayer d("d", 4, 4, Activation::kNone, &rng);
  auto copy = d.Clone();
  EXPECT_NE(copy->uid(), d.uid());
  Tensor x = Tensor::Randn(Shape({2, 4}), &rng, 1.0f);
  std::unique_ptr<LayerCache> c1, c2;
  EXPECT_LT(Tensor::MaxAbsDiff(d.Forward({&x}, &c1), copy->Forward({&x}, &c2)),
            1e-6f);
}

TEST(LayerNormLayerTest, NormalizesRows) {
  Rng rng(4);
  LayerNormLayer ln("ln", 8);
  Tensor x = Tensor::Randn(Shape({4, 8}), &rng, 3.0f);
  std::unique_ptr<LayerCache> cache;
  Tensor y = ln.Forward({&x}, &cache);
  for (int64_t i = 0; i < 4; ++i) {
    float mean = 0.0f;
    for (int64_t j = 0; j < 8; ++j) mean += y.at(i * 8 + j);
    EXPECT_NEAR(mean / 8.0f, 0.0f, 1e-4f);
  }
}

TEST(LayerNormLayerTest, Gradients) {
  Rng rng(5);
  LayerNormLayer ln("ln", 6);
  Tensor x = Tensor::Randn(Shape({3, 6}), &rng, 1.0f);
  CheckLayerGradients(&ln, x, 50, 1e-3, 3e-2, 9e-2);
}

TEST(CombineLayersTest, AddAndConcatGradients) {
  Rng rng(6);
  AddLayer add("add");
  Tensor a = Tensor::Randn(Shape({2, 3}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({2, 3}), &rng, 1.0f);
  std::unique_ptr<LayerCache> cache;
  Tensor y = add.Forward({&a, &b}, &cache);
  Tensor w = Tensor::Randn(y.shape(), &rng, 1.0f);
  auto grads = add.Backward(w, {&a, &b}, LayerCache());
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_LT(Tensor::MaxAbsDiff(grads[0], w), 1e-6f);
  EXPECT_LT(Tensor::MaxAbsDiff(grads[1], w), 1e-6f);

  ConcatLayer cat("cat");
  Tensor yc = cat.Forward({&a, &b}, &cache);
  EXPECT_EQ(yc.shape(), Shape({2, 6}));
  auto cgrads = cat.Backward(
      Tensor::Randn(yc.shape(), &rng, 1.0f), {&a, &b}, LayerCache());
  EXPECT_EQ(cgrads[0].shape(), a.shape());
  EXPECT_EQ(cgrads[1].shape(), b.shape());
}

TEST(CombineLayersTest, MeanPoolAndSelectTokenShapes) {
  MeanPoolLayer pool("pool");
  EXPECT_EQ(pool.OutputShape({Shape({4, 6, 8})}), Shape({4, 8}));
  SelectTokenLayer sel("sel", 0);
  EXPECT_EQ(sel.OutputShape({Shape({4, 6, 8})}), Shape({4, 8}));
}

TEST(EmbeddingBlockTest, ShapesAndGradients) {
  Rng rng(7);
  EmbeddingBlockLayer emb("emb", /*vocab=*/11, /*seq=*/4, /*hidden=*/6, &rng);
  EXPECT_EQ(emb.OutputShape({Shape({3, 4})}), Shape({3, 4, 6}));

  Tensor ids(Shape({2, 4}), {0, 3, 7, 10, 5, 5, 1, 2});
  std::unique_ptr<LayerCache> cache;
  Tensor y = emb.Forward({&ids}, &cache);
  EXPECT_EQ(y.shape(), Shape({2, 4, 6}));

  // Parameter gradient check (ids themselves have no gradient).
  Tensor w = Tensor::Randn(y.shape(), &rng, 1.0f);
  emb.ZeroGrads();
  emb.Backward(w, {&ids}, *cache);
  for (Parameter* p : emb.Params()) {
    Tensor analytic = p->grad;
    Tensor original = p->value;
    auto f = [&](const Tensor& probe) {
      p->value = probe;
      std::unique_ptr<LayerCache> c;
      double v = WeightedSum(emb.Forward({&ids}, &c), w);
      p->value = original;
      return v;
    };
    ExpectGradientsClose(f, original, analytic, 1e-2, 3e-2, 8e-2);
    p->value = original;
  }
}

TEST(TransformerBlockTest, ShapeAndProfilePositive) {
  Rng rng(8);
  TransformerBlockLayer block("blk", 8, 2, 16, &rng);
  EXPECT_EQ(block.OutputShape({Shape({3, 5, 8})}), Shape({3, 5, 8}));
  EXPECT_GT(block.ForwardFlopsPerRecord({Shape({1, 5, 8})}), 0.0);
  EXPECT_GT(block.InternalActivationBytesPerRecord({Shape({1, 5, 8})}), 0.0);
  EXPECT_EQ(block.Params().size(), 16u);
}

TEST(TransformerBlockTest, Gradients) {
  Rng rng(9);
  TransformerBlockLayer block("blk", 4, 2, 8, &rng);
  Tensor x = Tensor::Randn(Shape({2, 3, 4}), &rng, 0.7f);
  CheckLayerGradients(&block, x, 90, 1e-2, 4e-2, 1e-1);
}

TEST(TransformerBlockTest, CloneProducesIdenticalFunction) {
  Rng rng(10);
  TransformerBlockLayer block("blk", 8, 2, 16, &rng);
  auto copy = block.Clone();
  Tensor x = Tensor::Randn(Shape({2, 4, 8}), &rng, 1.0f);
  std::unique_ptr<LayerCache> c1, c2;
  EXPECT_LT(
      Tensor::MaxAbsDiff(block.Forward({&x}, &c1), copy->Forward({&x}, &c2)),
      1e-6f);
  EXPECT_NE(copy->uid(), block.uid());
}

TEST(AdapterLayerTest, NearIdentityAtInit) {
  Rng rng(11);
  AdapterLayer adapter("ad", 8, 2, &rng);
  Tensor x = Tensor::Randn(Shape({2, 3, 8}), &rng, 1.0f);
  std::unique_ptr<LayerCache> cache;
  Tensor y = adapter.Forward({&x}, &cache);
  // Up-projection initialized near zero -> output close to input.
  EXPECT_LT(Tensor::MaxAbsDiff(x, y), 0.05f);
}

TEST(AdapterLayerTest, Gradients) {
  Rng rng(12);
  AdapterLayer adapter("ad", 6, 3, &rng);
  // Give the adapter non-trivial weights so gradients are informative.
  for (Parameter* p : adapter.Params()) {
    p->value = Tensor::Randn(p->value.shape(), &rng, 0.4f);
  }
  Tensor x = Tensor::Randn(Shape({2, 2, 6}), &rng, 0.8f);
  CheckLayerGradients(&adapter, x, 120);
}

TEST(ConvBlockLayerTest, ShapesAndGradients) {
  Rng rng(13);
  ConvBlockLayer conv("conv", 2, 3, /*kernel=*/3, /*stride=*/1, /*padding=*/1,
                      /*relu=*/true, &rng);
  EXPECT_EQ(conv.OutputShape({Shape({2, 2, 4, 4})}), Shape({2, 3, 4, 4}));
  Tensor x = Tensor::Randn(Shape({1, 2, 4, 4}), &rng, 0.6f);
  // Small eps: the ReLU kink makes wide central differences inaccurate when
  // pre-activations sit near zero.
  CheckLayerGradients(&conv, x, 130, 2e-3);
}

TEST(ResidualBlockLayerTest, ShapesWithAndWithoutProjection) {
  Rng rng(14);
  ResidualBlockLayer same("r1", 8, 2, 8, /*stride=*/1, &rng);
  EXPECT_EQ(same.OutputShape({Shape({1, 8, 4, 4})}), Shape({1, 8, 4, 4}));
  EXPECT_EQ(same.Params().size(), 9u);  // no projection

  ResidualBlockLayer down("r2", 8, 4, 16, /*stride=*/2, &rng);
  EXPECT_EQ(down.OutputShape({Shape({1, 8, 4, 4})}), Shape({1, 16, 2, 2}));
  EXPECT_EQ(down.Params().size(), 12u);  // with projection
}

TEST(ResidualBlockLayerTest, Gradients) {
  Rng rng(15);
  ResidualBlockLayer block("r", 2, 2, 4, /*stride=*/2, &rng);
  Tensor x = Tensor::Randn(Shape({1, 2, 4, 4}), &rng, 0.6f);
  CheckLayerGradients(&block, x, 150, 1e-2, 4e-2, 1e-1);
}

TEST(MaxPoolAndGapTest, Shapes) {
  MaxPoolLayer pool("p", 2);
  EXPECT_EQ(pool.OutputShape({Shape({1, 3, 8, 8})}), Shape({1, 3, 4, 4}));
  GlobalAvgPoolLayer gap("g");
  EXPECT_EQ(gap.OutputShape({Shape({1, 3, 8, 8})}), Shape({1, 3}));
}

// ---------------------------------------------------------------------------
// Optimizers: each must reduce a quadratic objective.
// ---------------------------------------------------------------------------

class OptimizerTest : public ::testing::TestWithParam<int> {};

std::unique_ptr<Optimizer> MakeOptimizer(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<SgdOptimizer>(0.1);
    case 1:
      return std::make_unique<MomentumOptimizer>(0.05, 0.9);
    default:
      return std::make_unique<AdamOptimizer>(0.1);
  }
}

TEST_P(OptimizerTest, MinimizesQuadratic) {
  auto opt = MakeOptimizer(GetParam());
  Parameter p("w", Tensor(Shape({4}), {3.0f, -2.0f, 1.0f, 4.0f}));
  double initial = 0.0;
  for (int64_t i = 0; i < 4; ++i) initial += p.value.at(i) * p.value.at(i);
  for (int step = 0; step < 100; ++step) {
    p.ZeroGrad();
    for (int64_t i = 0; i < 4; ++i) p.grad.at(i) = 2.0f * p.value.at(i);
    opt->Step({&p});
  }
  double final_loss = 0.0;
  for (int64_t i = 0; i < 4; ++i) final_loss += p.value.at(i) * p.value.at(i);
  EXPECT_LT(final_loss, initial * 0.01);
}

TEST_P(OptimizerTest, CloneFreshHasSameHyperparams) {
  auto opt = MakeOptimizer(GetParam());
  auto fresh = opt->CloneFresh();
  EXPECT_DOUBLE_EQ(fresh->learning_rate(), opt->learning_rate());
  EXPECT_EQ(fresh->DebugString(), opt->DebugString());
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerTest,
                         ::testing::Values(0, 1, 2));

TEST(OptimizerDeterminismTest, SameSeedsSameTrajectory) {
  // Two identical parameter/optimizer pairs stepped with the same gradients
  // stay bitwise identical (required by the Nautilus equivalence tests).
  Rng rng(77);
  Tensor init = Tensor::Randn(Shape({8}), &rng, 1.0f);
  Parameter p1("a", init);
  Parameter p2("b", init);
  AdamOptimizer o1(0.01), o2(0.01);
  for (int step = 0; step < 20; ++step) {
    Tensor g = Tensor::Randn(Shape({8}), &rng, 1.0f);
    p1.grad = g;
    p2.grad = g;
    o1.Step({&p1});
    o2.Step({&p2});
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(p1.value, p2.value), 0.0f);
}

}  // namespace
}  // namespace nn
}  // namespace nautilus
