// Buffer pool behavior: hit/miss accounting, capacity normalization, budget
// enforcement, no-aliasing of live rentals, and the Tensor lifecycle hooks
// (recycling destructor, Uninitialized, PooledCopy).
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/tensor/tensor.h"
#include "nautilus/util/buffer_pool.h"
#include "nautilus/util/parallel.h"

namespace nautilus {
namespace {

using util::BufferPool;
using util::BufferPoolStats;

constexpr int64_t kMin = BufferPool::kMinPooledFloats;

// The pool is a process-wide singleton shared with every other test in this
// binary, so assertions work on deltas from a snapshot.
class PoolSnapshot {
 public:
  PoolSnapshot() : before_(BufferPool::Global().stats()) {}
  int64_t hits() const { return now().hits - before_.hits; }
  int64_t misses() const { return now().misses - before_.misses; }
  int64_t bytes_reused() const {
    return now().bytes_reused - before_.bytes_reused;
  }
  int64_t recycled() const { return now().recycled - before_.recycled; }
  int64_t dropped() const { return now().dropped - before_.dropped; }

 private:
  static BufferPoolStats now() { return BufferPool::Global().stats(); }
  BufferPoolStats before_;
};

TEST(BufferPool, RecycleThenRentHits) {
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  PoolSnapshot snap;
  std::vector<float> buf = pool.Rent(2 * kMin);
  EXPECT_EQ(snap.misses(), 1);
  buf[0] = 123.0f;
  pool.Recycle(std::move(buf));
  EXPECT_EQ(snap.recycled(), 1);
  std::vector<float> again = pool.Rent(2 * kMin);
  EXPECT_EQ(snap.hits(), 1);
  EXPECT_EQ(snap.bytes_reused(), 2 * kMin * 4);
  EXPECT_EQ(static_cast<int64_t>(again.size()), 2 * kMin);
}

TEST(BufferPool, OddSizesShareAClassViaCapacityNormalization) {
  // A miss reserves the full class capacity, so any later request that maps
  // to the same class reuses the buffer even when the exact sizes differ.
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  PoolSnapshot snap;
  std::vector<float> buf = pool.Rent(kMin + 300);
  EXPECT_GE(static_cast<int64_t>(buf.capacity()), 2 * kMin);
  pool.Recycle(std::move(buf));
  std::vector<float> other = pool.Rent(2 * kMin - 1);
  EXPECT_EQ(snap.hits(), 1);
  EXPECT_EQ(static_cast<int64_t>(other.size()), 2 * kMin - 1);
}

TEST(BufferPool, SmallRequestsBypassThePool) {
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  PoolSnapshot snap;
  std::vector<float> buf = pool.Rent(kMin - 1);
  EXPECT_EQ(static_cast<int64_t>(buf.size()), kMin - 1);
  EXPECT_EQ(snap.hits() + snap.misses(), 0);
  pool.Recycle(std::move(buf));
  EXPECT_EQ(snap.recycled(), 0);
}

TEST(BufferPool, MissesComeBackZeroFilled) {
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  std::vector<float> buf = pool.Rent(kMin);
  for (int64_t i = 0; i < kMin; ++i) ASSERT_EQ(buf[i], 0.0f);
}

TEST(BufferPool, BudgetDropsOversizedAndOverflowingBuffers) {
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  const int64_t saved = pool.budget_bytes();
  pool.set_budget_bytes(32 * kMin * 4);
  PoolSnapshot snap;
  // Larger than a quarter of the budget: dropped outright.
  pool.Recycle(pool.Rent(16 * kMin));
  EXPECT_EQ(snap.dropped(), 1);
  // Fill the budget with 8-class buffers, then one more must be dropped.
  std::vector<std::vector<float>> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.Rent(8 * kMin));
  for (auto& b : held) pool.Recycle(std::move(b));
  EXPECT_GE(snap.dropped(), 2);  // budget holds at most 4 of them
  EXPECT_LE(pool.stats().resident_bytes, pool.budget_bytes());
  pool.set_budget_bytes(saved);
  pool.Clear();
}

TEST(BufferPool, ConcurrentRentalsNeverAlias) {
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  // Park a buffer (the loop re-rents the same one), then hold more live
  // rentals than the pool contains so both hit and miss paths are covered.
  for (int i = 0; i < 3; ++i) pool.Recycle(pool.Rent(kMin));
  std::vector<std::vector<float>> live;
  for (int i = 0; i < 8; ++i) live.push_back(pool.Rent(kMin));
  std::set<const float*> ptrs;
  for (auto& b : live) ptrs.insert(b.data());
  EXPECT_EQ(ptrs.size(), live.size());
  // Each rental is independently writable without trampling the others.
  for (size_t i = 0; i < live.size(); ++i) {
    for (auto& v : live[i]) v = static_cast<float>(i);
  }
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i][0], static_cast<float>(i));
    EXPECT_EQ(live[i][kMin - 1], static_cast<float>(i));
  }
}

TEST(BufferPool, ParallelRentRecycleIsSafe) {
  BufferPool& pool = BufferPool::Global();
  pool.Clear();
  ParallelFor(64, [&pool](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      std::vector<float> b = pool.Rent(kMin + (i % 7) * 100);
      b[0] = static_cast<float>(i);
      ASSERT_EQ(b[0], static_cast<float>(i));
      pool.Recycle(std::move(b));
    }
  });
  EXPECT_LE(pool.stats().resident_bytes, pool.budget_bytes());
}

// ---------------------------------------------------------------------------
// Tensor lifecycle integration.
// ---------------------------------------------------------------------------

TEST(TensorPool, DestructorRecyclesLargeTensors) {
  BufferPool::Global().Clear();
  PoolSnapshot snap;
  { Tensor t(Shape({4, kMin})); }
  EXPECT_EQ(snap.recycled(), 1);
  // The next equally-sized construction would find it again.
  Tensor t2 = Tensor::Uninitialized(Shape({4, kMin}));
  EXPECT_EQ(snap.hits(), 1);
}

TEST(TensorPool, SmallTensorsAreNotPooled) {
  BufferPool::Global().Clear();
  PoolSnapshot snap;
  { Tensor t(Shape({8})); }
  EXPECT_EQ(snap.recycled(), 0);
}

TEST(TensorPool, UninitializedHasShapeAndIsFullyWritable) {
  Tensor t = Tensor::Uninitialized(Shape({3, kMin}));
  ASSERT_EQ(t.NumElements(), 3 * kMin);
  float* p = t.data();
  for (int64_t i = 0; i < t.NumElements(); ++i) p[i] = 2.0f;
  EXPECT_EQ(t.at(0), 2.0f);
  EXPECT_EQ(t.at(t.NumElements() - 1), 2.0f);
}

TEST(TensorPool, PooledCopyIsDeepAndExact) {
  BufferPool::Global().Clear();
  Tensor src(Shape({2, kMin}));
  for (int64_t i = 0; i < src.NumElements(); ++i) {
    src.at(i) = static_cast<float>(i % 97);
  }
  Tensor copy = src.PooledCopy();
  EXPECT_EQ(Tensor::MaxAbsDiff(src, copy), 0.0f);
  EXPECT_NE(copy.data(), src.data());
  copy.at(0) = -1.0f;
  EXPECT_EQ(src.at(0), 0.0f);
}

TEST(TensorPool, RecycledContentsNeverLeakIntoZeroInitTensors) {
  // Tensor(shape) promises zeros even when its storage came off the pool by
  // way of the vector-assignment path; only Uninitialized skips clearing.
  BufferPool::Global().Clear();
  {
    Tensor t = Tensor::Uninitialized(Shape({2, kMin}));
    float* p = t.data();
    for (int64_t i = 0; i < t.NumElements(); ++i) p[i] = 9.0f;
  }
  Tensor z(Shape({2, kMin}));
  for (int64_t i = 0; i < z.NumElements(); ++i) ASSERT_EQ(z.at(i), 0.0f);
}

}  // namespace
}  // namespace nautilus
