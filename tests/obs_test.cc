#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "nautilus/obs/metrics.h"
#include "nautilus/obs/trace.h"

namespace nautilus {
namespace obs {
namespace {

// Minimal structural JSON validator: tracks {}/[] nesting with full string
// and escape awareness. Catches unbalanced braces, raw control characters,
// and truncated output — the failure modes of a hand-rolled serializer.
bool IsStructurallyValidJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool saw_value = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        saw_value = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        saw_value = true;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && saw_value;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, ConcurrentSpansExportBalancedValidJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();

  constexpr int kThreads = 8;
  constexpr int kOuterSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kOuterSpansPerThread; ++i) {
        TraceScope outer("test", "outer");
        outer.AddArg("thread", t).AddArg("i", i);
        {
          TraceScope inner("test", "inner");
          inner.AddArgHex("hash", 0xdeadbeefcafef00dULL)
              .AddArg("frozen", true);
        }
        Tracer::Global().RecordInstant("test", "tick");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every span is one B plus one E; nothing is dropped under contention.
  constexpr size_t kSpans = kThreads * kOuterSpansPerThread * 2;  // outer+inner
  constexpr size_t kInstants = kThreads * kOuterSpansPerThread;
  EXPECT_EQ(tracer.event_count(), kSpans * 2 + kInstants);

  const std::string json = tracer.ExportChromeJson();
  EXPECT_TRUE(IsStructurallyValidJson(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), kSpans);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), kSpans);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), kInstants);
  EXPECT_NE(json.find("0xdeadbeefcafef00d"), std::string::npos);
}

TEST_F(TracerTest, SpanArgsAreEscaped) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    TraceScope span("test", "na\"me\\with\nnasties");
    span.AddArg("key", std::string_view("va\"lue\twith\x01junk"));
    // A string literal must export as a JSON string, not decay to bool.
    span.AddArg("mode", "optimized");
  }
  const std::string json = tracer.ExportChromeJson();
  EXPECT_TRUE(IsStructurallyValidJson(json));
  EXPECT_NE(json.find("\\\"lue"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"optimized\""), std::string::npos);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  {
    TraceScope span("test", "ignored");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.ElapsedNs(), 0);
    span.AddArg("key", 1).AddArg("s", std::string_view("x"));
  }
  tracer.RecordInstant("test", "also ignored");
  EXPECT_EQ(tracer.event_count(), 0u);
  const std::string json = tracer.ExportChromeJson();
  EXPECT_TRUE(IsStructurallyValidJson(json));
  // Only the process-name metadata event remains.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 0u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 0u);
}

TEST_F(TracerTest, ClearDropsEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  { TraceScope span("test", "x"); }
  EXPECT_EQ(tracer.event_count(), 2u);
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(TracerTest, LocalTracerInstanceIsIndependent) {
  Tracer local;
  local.Enable();
  EXPECT_FALSE(Tracer::Global().enabled());
  { TraceScope span(local, "test", "local-span"); }
  EXPECT_EQ(local.event_count(), 2u);
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
}

TEST(MetricsTest, CountersExactUnderContention) {
  Counter counter;
  constexpr int kThreads = 16;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kAddsPerThread);
}

TEST(MetricsTest, HistogramExactCountAndSumUnderContention) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        hist.Record(t * 1000 + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.count(), int64_t{kThreads} * kRecordsPerThread);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += int64_t{kRecordsPerThread} * (t * 1000 + 1);
  }
  EXPECT_EQ(hist.sum(), expected_sum);
  EXPECT_EQ(hist.min(), 1);
  EXPECT_EQ(hist.max(), 7001);
}

TEST(MetricsTest, HistogramPercentileIsBucketUpperBound) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(100);  // bucket [64, 128)
  EXPECT_EQ(hist.ApproxPercentile(0.5), 128);
  EXPECT_EQ(hist.ApproxPercentile(1.0), 128);
  Histogram empty;
  EXPECT_EQ(empty.ApproxPercentile(0.5), 0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.counter");
  Counter& b = registry.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
  registry.gauge("test.gauge").Set(2.5);
  registry.histogram("test.hist").Record(7);

  const std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "test.counter");
  EXPECT_EQ(names[1], "test.gauge");
  EXPECT_EQ(names[2], "test.hist");

  const std::string summary = registry.Summary();
  EXPECT_NE(summary.find("test.counter"), std::string::npos);
  EXPECT_NE(summary.find("test.gauge"), std::string::npos);
  EXPECT_NE(summary.find("test.hist"), std::string::npos);

  registry.ResetAll();
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(registry.gauge("test.gauge").value(), 0.0);
  EXPECT_EQ(registry.histogram("test.hist").count(), 0);
  // References remain valid after reset.
  a.Add(1);
  EXPECT_EQ(b.value(), 1);
}

TEST(MetricsTest, ScopedLatencyOnlyRecordsWhileTracing) {
  Histogram hist;
  { ScopedLatency latency(hist); }
  EXPECT_EQ(hist.count(), 0);
  Tracer::Global().Enable();
  { ScopedLatency latency(hist); }
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  EXPECT_EQ(hist.count(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace nautilus
