// Serving-path tests: NaN guards for fully-masked softmax/attention rows,
// the unbiased Rng, KV-cache growth, bitwise decode parity (incremental
// KV-cache decode vs full-sequence prefill, across thread degrees, quant
// modes, and fusion), batched-vs-solo stream independence, and the
// continuous-batching scheduler's correctness under backpressure.
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/nn/transformer.h"
#include "nautilus/obs/metrics.h"
#include "nautilus/serve/engine.h"
#include "nautilus/serve/kv_cache.h"
#include "nautilus/serve/sampler.h"
#include "nautilus/serve/scheduler.h"
#include "nautilus/tensor/fused_ops.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/tensor/quant.h"
#include "nautilus/util/parallel.h"
#include "nautilus/util/random.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace {

class ScopedDegree {
 public:
  explicit ScopedDegree(int degree) : saved_(ParallelismDegree()) {
    SetParallelismDegree(degree);
  }
  ~ScopedDegree() { SetParallelismDegree(saved_); }

 private:
  int saved_;
};

Tensor RandTensor(const Shape& shape, uint64_t seed, float scale = 0.5f) {
  Rng rng(seed);
  Tensor t(shape);
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    t.data()[i] = rng.Normal() * scale;
  }
  return t;
}

// ---------------------------------------------------------------------------
// Satellite: softmax / attention NaN guards.
// ---------------------------------------------------------------------------

TEST(SoftmaxGuard, AllNegInfRowEmitsZeros) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor logits({2, 3});
  float vals[] = {-inf, -inf, -inf, 1.0f, 2.0f, 3.0f};
  for (int i = 0; i < 6; ++i) logits.data()[i] = vals[i];
  Tensor y = ops::SoftmaxForward(logits);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(y.data()[j], 0.0f) << "masked row must be exactly zero";
  }
  float sum = 0.0f;
  for (int j = 3; j < 6; ++j) {
    EXPECT_FALSE(std::isnan(y.data()[j]));
    sum += y.data()[j];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(SoftmaxGuard, UnderflowedRowEmitsZeros) {
  // Finite logits so far below the row max that every exp underflows to
  // zero is impossible after max-subtraction (the max maps to exp(0)=1),
  // but a row whose max IS -inf after masking must not divide by zero.
  const float inf = std::numeric_limits<float>::infinity();
  Tensor logits({1, 4});
  for (int i = 0; i < 4; ++i) logits.data()[i] = -inf;
  Tensor y = ops::SoftmaxForward(logits);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(y.data()[i], 0.0f);
}

TEST(AttentionMask, FullyMaskedQueryRowsEmitZerosNotNaN) {
  const int64_t b = 2, heads = 2, s = 3, dh = 4;
  Tensor q = RandTensor({b, heads, s, dh}, 11);
  Tensor k = RandTensor({b, heads, s, dh}, 12);
  Tensor v = RandTensor({b, heads, s, dh}, 13);
  // Batch 0 has zero valid keys: every query row is fully masked.
  std::vector<int64_t> valid = {0, s};
  ops::AttentionMask mask;
  mask.valid_lens = valid.data();
  ops::AttentionCache cache;
  Tensor y = ops::AttentionForward(q, k, v, &cache, &mask);
  for (int64_t i = 0; i < heads * s * dh; ++i) {
    EXPECT_EQ(y.data()[i], 0.0f) << "fully-masked batch must emit zeros";
  }
  for (int64_t i = heads * s * dh; i < y.NumElements(); ++i) {
    EXPECT_FALSE(std::isnan(y.data()[i]));
  }
  // The cached probability rows for the masked batch are zero, so backward
  // sends no gradient through them.
  for (int64_t i = 0; i < heads * s * s; ++i) {
    EXPECT_EQ(cache.probs.data()[i], 0.0f);
  }
  // The cache-free inference variant agrees bitwise.
  Tensor yi = ops::AttentionInference(q, k, v, &mask);
  for (int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_EQ(y.data()[i], yi.data()[i]);
  }
}

TEST(AttentionMask, UnmaskedPathUnchangedAndCausalMatchesInference) {
  const int64_t b = 1, heads = 2, s = 4, dh = 3;
  Tensor q = RandTensor({b, heads, s, dh}, 21);
  Tensor k = RandTensor({b, heads, s, dh}, 22);
  Tensor v = RandTensor({b, heads, s, dh}, 23);
  ops::AttentionCache c1;
  Tensor no_mask = ops::AttentionForward(q, k, v, &c1, nullptr);
  Tensor no_mask_inf = ops::AttentionInference(q, k, v, nullptr);
  for (int64_t i = 0; i < no_mask.NumElements(); ++i) {
    EXPECT_EQ(no_mask.data()[i], no_mask_inf.data()[i]);
  }
  ops::AttentionMask causal;
  causal.causal = true;
  ops::AttentionCache c2;
  Tensor cm = ops::AttentionForward(q, k, v, &c2, &causal);
  Tensor ci = ops::AttentionInference(q, k, v, &causal);
  for (int64_t i = 0; i < cm.NumElements(); ++i) {
    EXPECT_EQ(cm.data()[i], ci.data()[i]);
  }
  // Causal row 0 only sees key 0; it must differ from the unmasked result
  // somewhere (sanity that the mask actually bites).
  bool differs = false;
  for (int64_t i = 0; i < cm.NumElements(); ++i) {
    if (cm.data()[i] != no_mask.data()[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Satellite: unbiased Rng.
// ---------------------------------------------------------------------------

TEST(RngUniformInt, DeterministicInRangeAndCoversSupport) {
  Rng a(42), b(42);
  const int64_t n = 13;
  std::vector<int64_t> counts(static_cast<size_t>(n), 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t va = a.UniformInt(n);
    int64_t vb = b.UniformInt(n);
    EXPECT_EQ(va, vb) << "same seed must give the same stream";
    ASSERT_GE(va, 0);
    ASSERT_LT(va, n);
    counts[static_cast<size_t>(va)]++;
  }
  // Every value appears, and no value is grossly over-weighted (each
  // expected ~1538; a 3x band is astronomically safe for a correct
  // generator but catches systematic bias).
  for (int64_t c : counts) {
    EXPECT_GT(c, 20000 / n / 3);
    EXPECT_LT(c, 3 * 20000 / n);
  }
}

TEST(RngUniformInt, PowerOfTwoAndOneBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0);
    int64_t v = rng.UniformInt(64);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 64);
  }
}

// ---------------------------------------------------------------------------
// KV cache growth.
// ---------------------------------------------------------------------------

TEST(KvEntry, GrowthPreservesAppendedRows) {
  const int64_t heads = 3, dh = 5;
  nn::KvEntry e;
  e.Reserve(heads, dh, /*min_cap=*/4);  // small: forces several regrowths
  std::vector<std::vector<float>> krows, vrows;
  Rng rng(99);
  for (int step = 0; step < 70; ++step) {  // crosses several doublings
    std::vector<float> kr(static_cast<size_t>(heads * dh));
    std::vector<float> vr(static_cast<size_t>(heads * dh));
    for (float& x : kr) x = rng.Normal();
    for (float& x : vr) x = rng.Normal();
    e.Append(kr.data(), vr.data());
    krows.push_back(kr);
    vrows.push_back(vr);
  }
  EXPECT_EQ(e.len, 70);
  EXPECT_GE(e.cap, 70);
  for (int64_t h = 0; h < heads; ++h) {
    for (int64_t t = 0; t < e.len; ++t) {
      for (int64_t d = 0; d < dh; ++d) {
        EXPECT_EQ(e.KHead(h)[t * dh + d],
                  krows[static_cast<size_t>(t)][static_cast<size_t>(h * dh + d)]);
        EXPECT_EQ(e.VHead(h)[t * dh + d],
                  vrows[static_cast<size_t>(t)][static_cast<size_t>(h * dh + d)]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sampler.
// ---------------------------------------------------------------------------

TEST(Sampler, GreedyPicksArgmaxLowestIndexOnTies) {
  serve::SamplingParams greedy;
  serve::Sampler s(greedy, 1);
  std::vector<float> logits = {0.1f, 2.0f, 2.0f, -1.0f};
  EXPECT_EQ(s.Sample(logits.data(), 4), 1);
}

TEST(Sampler, TemperatureSamplingIsSeedDeterministicAndRespectsTopK) {
  serve::SamplingParams p;
  p.temperature = 0.7f;
  p.top_k = 3;
  std::vector<float> logits = {5.0f, 4.0f, 3.0f, -10.0f, -20.0f, 2.0f};
  serve::Sampler a(p, 123), b(p, 123);
  for (int i = 0; i < 500; ++i) {
    int64_t va = a.Sample(logits.data(), 6);
    EXPECT_EQ(va, b.Sample(logits.data(), 6));
    // top_k=3 restricts to the three largest logits: ids {0, 1, 2}.
    EXPECT_TRUE(va == 0 || va == 1 || va == 2) << va;
  }
}

// ---------------------------------------------------------------------------
// Tentpole: decode parity. Incremental KV-cache decode must be bitwise
// equal to a full-sequence prefill at every step, for every thread degree,
// in f32, int8, f16, and with fusion enabled.
// ---------------------------------------------------------------------------

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.NumElements(), b.NumElements());
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << what << " diverges at flat index " << i;
  }
}

void RunDecodeParity(const serve::Engine& engine) {
  const std::vector<int64_t> prompt = {5, 17, 42, 3};
  const int64_t steps = 5;

  // Incremental: one prefill, then KV-cache decode steps, greedily feeding
  // the argmax token. Collect the logits of every step.
  std::vector<Tensor> inc_logits;
  std::vector<int64_t> seq = prompt;
  auto cache = engine.NewCache();
  inc_logits.push_back(
      engine.Prefill(prompt.data(), static_cast<int64_t>(prompt.size()),
                     cache.get()));
  serve::Sampler greedy(serve::SamplingParams{}, 0);
  for (int64_t t = 0; t < steps; ++t) {
    int64_t tok =
        greedy.Sample(inc_logits.back().data(), engine.vocab());
    seq.push_back(tok);
    std::vector<serve::KvCache*> caches = {cache.get()};
    inc_logits.push_back(engine.DecodeStep(&tok, caches));
  }

  // Oracle: for every prefix, a fresh full-sequence prefill must reproduce
  // the incremental logits bitwise.
  for (size_t plen = prompt.size(); plen < seq.size(); ++plen) {
    auto fresh = engine.NewCache();
    Tensor full = engine.Prefill(seq.data(), static_cast<int64_t>(plen),
                                 fresh.get());
    ExpectBitwiseEqual(inc_logits[plen - prompt.size()], full,
                       "incremental vs full-prefill logits");
  }
}

TEST(DecodeParity, IncrementalMatchesFullPrefillAcrossDegrees) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  for (int degree : {1, 2, 8}) {
    ScopedDegree d(degree);
    RunDecodeParity(engine);
  }
}

TEST(DecodeParity, HoldsUnderInt8Quant) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  quant::ScopedQuantMode q(quant::QuantMode::kInt8);
  for (int degree : {1, 8}) {
    ScopedDegree d(degree);
    RunDecodeParity(engine);
  }
}

TEST(DecodeParity, HoldsUnderF16QuantAndFusion) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  {
    quant::ScopedQuantMode q(quant::QuantMode::kF16);
    RunDecodeParity(engine);
  }
  {
    fused::ScopedFusion f(true);
    RunDecodeParity(engine);
  }
}

TEST(DecodeParity, HoldsWithAdapters) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::EngineOptions opts;
  opts.num_adapters = 2;
  serve::Engine engine(model, opts);
  RunDecodeParity(engine);
}

// ---------------------------------------------------------------------------
// Tentpole: batched decode is bitwise-independent of batch composition.
// ---------------------------------------------------------------------------

TEST(BatchedDecode, RowsMatchSoloStreamsBitwise) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  const std::vector<std::vector<int64_t>> prompts = {
      {1, 2, 3}, {9, 8, 7, 6, 5}, {40}, {100, 200, 300, 400}};
  const int64_t n = static_cast<int64_t>(prompts.size());

  // Solo: each stream decodes alone; record every step's logits.
  std::vector<std::vector<Tensor>> solo(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> solo_toks(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    auto cache = engine.NewCache();
    Tensor logits = engine.Prefill(
        prompts[static_cast<size_t>(i)].data(),
        static_cast<int64_t>(prompts[static_cast<size_t>(i)].size()),
        cache.get());
    serve::Sampler greedy(serve::SamplingParams{}, 0);
    for (int step = 0; step < 4; ++step) {
      int64_t tok = greedy.Sample(logits.data(), engine.vocab());
      solo_toks[static_cast<size_t>(i)].push_back(tok);
      std::vector<serve::KvCache*> caches = {cache.get()};
      logits = engine.DecodeStep(&tok, caches);
      solo[static_cast<size_t>(i)].push_back(logits);
    }
  }

  // Batched: all four streams advance together in one DecodeStep per step.
  std::vector<std::unique_ptr<serve::KvCache>> caches;
  std::vector<Tensor> prefill(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    caches.push_back(engine.NewCache());
    prefill[static_cast<size_t>(i)] = engine.Prefill(
        prompts[static_cast<size_t>(i)].data(),
        static_cast<int64_t>(prompts[static_cast<size_t>(i)].size()),
        caches.back().get());
  }
  std::vector<int64_t> last(static_cast<size_t>(n));
  serve::Sampler greedy(serve::SamplingParams{}, 0);
  for (int64_t i = 0; i < n; ++i) {
    last[static_cast<size_t>(i)] =
        greedy.Sample(prefill[static_cast<size_t>(i)].data(), engine.vocab());
    EXPECT_EQ(last[static_cast<size_t>(i)],
              solo_toks[static_cast<size_t>(i)][0]);
  }
  std::vector<serve::KvCache*> cptrs;
  for (auto& c : caches) cptrs.push_back(c.get());
  for (int step = 0; step < 4; ++step) {
    Tensor batched = engine.DecodeStep(last.data(), cptrs);
    const int64_t vocab = engine.vocab();
    for (int64_t i = 0; i < n; ++i) {
      const Tensor& want = solo[static_cast<size_t>(i)][static_cast<size_t>(step)];
      for (int64_t j = 0; j < vocab; ++j) {
        ASSERT_EQ(batched.data()[i * vocab + j], want.data()[j])
            << "stream " << i << " logit " << j << " at step " << step;
      }
      if (step + 1 < 4) {
        last[static_cast<size_t>(i)] =
            solo_toks[static_cast<size_t>(i)][static_cast<size_t>(step) + 1];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler: continuous batching produces exactly the solo results, under
// backpressure, across batch limits.
// ---------------------------------------------------------------------------

TEST(Scheduler, CompletionsMatchGenerateOneUnderBackpressure) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);

  std::vector<serve::Request> reqs;
  for (int i = 0; i < 10; ++i) {
    serve::Request r;
    r.prompt = {static_cast<int64_t>(i * 7 % engine.vocab()),
                static_cast<int64_t>(i + 1)};
    r.max_new_tokens = 3 + (i % 4);
    r.seed = static_cast<uint64_t>(i);
    if (i % 2 == 1) {  // alternate sampled streams to exercise the Rng path
      r.sampling.temperature = 0.9f;
      r.sampling.top_k = 16;
    }
    reqs.push_back(r);
  }
  std::vector<serve::Completion> want;
  for (const serve::Request& r : reqs) want.push_back(GenerateOne(engine, r));

  // Tiny queue forces Submit to block (backpressure); small max_batch forces
  // several admission waves with retirement in between.
  serve::SchedulerOptions opts;
  opts.max_batch = 3;
  opts.queue_capacity = 2;
  serve::RequestScheduler scheduler(engine, opts);
  std::vector<std::future<serve::Completion>> futures;
  for (const serve::Request& r : reqs) futures.push_back(scheduler.Submit(r));
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::Completion got = futures[i].get();
    EXPECT_EQ(got.tokens, want[i].tokens) << "request " << i;
    EXPECT_EQ(got.reason, want[i].reason) << "request " << i;
  }
  scheduler.Shutdown();
}

TEST(Scheduler, EosStopsAStreamEarly) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  serve::Request probe;
  probe.prompt = {5, 17, 42, 3};
  probe.max_new_tokens = 6;
  serve::Completion free_run = GenerateOne(engine, probe);
  ASSERT_GE(free_run.tokens.size(), 2u);

  serve::Request r = probe;
  r.eos_id = free_run.tokens[1];  // the greedy second token becomes eos
  serve::Completion got = GenerateOne(engine, r);
  ASSERT_EQ(got.tokens.size(), 2u);
  EXPECT_EQ(got.tokens[1], r.eos_id);
  EXPECT_EQ(got.reason, serve::FinishReason::kEos);
}

TEST(Scheduler, FullLengthPromptYieldsExactlyOneToken) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  serve::Request r;
  // Full-length prompt: the one sampled token comes from prefill logits and
  // is never fed back, so max_new_tokens = 1 exactly fits the table.
  r.prompt.assign(static_cast<size_t>(engine.max_len()), 3);
  r.max_new_tokens = 1;
  serve::Completion got = GenerateOne(engine, r);
  EXPECT_EQ(got.tokens.size(), 1u);
  EXPECT_EQ(got.reason, serve::FinishReason::kLength);
}

// ---------------------------------------------------------------------------
// Satellite: requests that cannot honor max_new_tokens within the positional
// table are rejected up front, in Submit and GenerateOne alike.
// ---------------------------------------------------------------------------

TEST(SchedulerDeathTest, RejectsPromptPlusMaxNewBeyondMaxLen) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  serve::Request r;
  r.prompt.assign(static_cast<size_t>(engine.max_len()), 3);
  r.max_new_tokens = 2;  // needs max_len + 1 positions
  EXPECT_DEATH(GenerateOne(engine, r), "request rejected");
  EXPECT_DEATH(
      {
        serve::RequestScheduler scheduler(engine);
        scheduler.Submit(r);
      },
      "request rejected");

  serve::Request edge;  // largest admissible request at this prompt length
  edge.prompt = {5, 17, 42};
  edge.max_new_tokens = engine.max_len() - 2;  // 3 + 10 - 1 == max_len
  serve::Completion got = GenerateOne(engine, edge);
  EXPECT_EQ(static_cast<int64_t>(got.tokens.size()), edge.max_new_tokens);
  EXPECT_EQ(got.reason, serve::FinishReason::kLength);
}

// ---------------------------------------------------------------------------
// Tentpole: paged KV storage. Page-table append/growth, copy-on-write on
// divergence from a shared page, bitwise parity with the unpaged layout, and
// shared-prefix reuse through the prefix cache.
// ---------------------------------------------------------------------------

TEST(PagedKvEntry, AppendAcrossPagesPreservesRows) {
  const int64_t heads = 3, dh = 5, page_rows = 4;
  nn::PagedKvEntry e;
  e.Init(heads, dh, page_rows);
  std::vector<std::vector<float>> krows, vrows;
  Rng rng(99);
  for (int step = 0; step < 11; ++step) {  // 2 full pages + a partial tail
    std::vector<float> kr(static_cast<size_t>(heads * dh));
    std::vector<float> vr(static_cast<size_t>(heads * dh));
    for (float& x : kr) x = rng.Normal();
    for (float& x : vr) x = rng.Normal();
    e.AppendRow(kr.data(), vr.data());
    krows.push_back(kr);
    vrows.push_back(vr);
  }
  EXPECT_EQ(e.len, 11);
  ASSERT_EQ(e.pages.size(), 3u);
  std::vector<const float*> kp, vp;
  e.CollectPageTable(&kp, &vp);
  for (int64_t h = 0; h < heads; ++h) {
    for (int64_t t = 0; t < e.len; ++t) {
      const float* krow =
          kp[static_cast<size_t>(t / page_rows)] +
          (h * page_rows + t % page_rows) * dh;
      const float* vrow =
          vp[static_cast<size_t>(t / page_rows)] +
          (h * page_rows + t % page_rows) * dh;
      for (int64_t d = 0; d < dh; ++d) {
        EXPECT_EQ(krow[d],
                  krows[static_cast<size_t>(t)][static_cast<size_t>(h * dh + d)]);
        EXPECT_EQ(vrow[d],
                  vrows[static_cast<size_t>(t)][static_cast<size_t>(h * dh + d)]);
      }
    }
  }
}

TEST(PagedKvEntry, CopyOnWriteLeavesSharedPageUntouched) {
  const int64_t heads = 2, dh = 3, page_rows = 4;
  nn::PagedKvEntry a;
  a.Init(heads, dh, page_rows);
  Rng rng(7);
  std::vector<float> row(static_cast<size_t>(heads * dh));
  for (int step = 0; step < 6; ++step) {  // one full page + 2 tail rows
    for (float& x : row) x = rng.Normal();
    a.AppendRow(row.data(), row.data());
  }

  nn::PagedKvEntry b;
  b.Init(heads, dh, page_rows);
  b.AttachShared(a.pages[0], page_rows);  // full page by reference
  b.AttachShared(a.pages[1], 2);          // partial tail by reference
  EXPECT_EQ(b.len, 6);
  EXPECT_TRUE(b.TailShared());
  EXPECT_EQ(b.pages[1].get(), a.pages[1].get());

  // Snapshot a's tail page, then diverge b: its append must copy, not write
  // through the shared page.
  std::vector<float> a_tail_k(a.pages[1]->k.data(),
                              a.pages[1]->k.data() + a.pages[1]->k.NumElements());
  for (float& x : row) x = 1000.0f;
  b.AppendRow(row.data(), row.data());
  EXPECT_EQ(b.len, 7);
  EXPECT_NE(b.pages[1].get(), a.pages[1].get()) << "divergence must copy";
  EXPECT_FALSE(b.TailShared());
  for (int64_t i = 0; i < a.pages[1]->k.NumElements(); ++i) {
    ASSERT_EQ(a.pages[1]->k.data()[i], a_tail_k[static_cast<size_t>(i)])
        << "shared page mutated at " << i;
  }
  // b sees the 2 attached rows it copied plus its divergent row.
  for (int64_t h = 0; h < heads; ++h) {
    const float* copied = b.pages[1]->k.data() + h * page_rows * dh;
    const float* orig = a.pages[1]->k.data() + h * page_rows * dh;
    for (int64_t i = 0; i < 2 * dh; ++i) ASSERT_EQ(copied[i], orig[i]);
    for (int64_t d = 0; d < dh; ++d) {
      ASSERT_EQ(copied[2 * dh + d], 1000.0f);
    }
  }
}

void RunPagedVsUnpagedParity(const zoo::BertLikeModel& model) {
  serve::EngineOptions up;
  up.paged = false;
  serve::Engine unpaged(model, up);
  serve::EngineOptions pp;
  pp.page_rows = 4;  // several pages within MiniScale's 12 positions
  serve::Engine paged(model, pp);

  const std::vector<int64_t> prompt = {5, 17, 42, 3};
  auto uc = unpaged.NewCache();
  auto pc = paged.NewCache();
  Tensor ul = unpaged.Prefill(prompt.data(),
                              static_cast<int64_t>(prompt.size()), uc.get());
  Tensor pl = paged.Prefill(prompt.data(),
                            static_cast<int64_t>(prompt.size()), pc.get());
  ExpectBitwiseEqual(ul, pl, "paged vs unpaged prefill logits");
  serve::Sampler greedy(serve::SamplingParams{}, 0);
  for (int step = 0; step < 5; ++step) {
    int64_t tok = greedy.Sample(ul.data(), unpaged.vocab());
    std::vector<serve::KvCache*> ucs = {uc.get()};
    std::vector<serve::KvCache*> pcs = {pc.get()};
    ul = unpaged.DecodeStep(&tok, ucs);
    pl = paged.DecodeStep(&tok, pcs);
    ExpectBitwiseEqual(ul, pl, "paged vs unpaged decode logits");
  }
}

TEST(PagedParity, MatchesUnpagedBitwiseAcrossDegrees) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  for (int degree : {1, 2, 8}) {
    ScopedDegree d(degree);
    RunPagedVsUnpagedParity(model);
  }
}

TEST(PagedParity, HoldsUnderInt8AndF16Quant) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  {
    quant::ScopedQuantMode q(quant::QuantMode::kInt8);
    for (int degree : {1, 8}) {
      ScopedDegree d(degree);
      RunPagedVsUnpagedParity(model);
    }
  }
  {
    quant::ScopedQuantMode q(quant::QuantMode::kF16);
    RunPagedVsUnpagedParity(model);
  }
}

TEST(PrefixCacheReuse, SecondStreamAttachesSharedPagesBitwise) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::EngineOptions opts;
  opts.page_rows = 4;
  serve::Engine engine(model, opts);
  obs::Counter& hits =
      obs::MetricsRegistry::Global().counter("serve.prefix_cache.hits");
  obs::Counter& shared =
      obs::MetricsRegistry::Global().counter("serve.prefix_cache.pages_shared");
  obs::Counter& reused =
      obs::MetricsRegistry::Global().counter("serve.prefix_cache.rows_reused");
  const int64_t hits0 = hits.value();
  const int64_t shared0 = shared.value();
  const int64_t reused0 = reused.value();

  const std::vector<int64_t> prompt = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto c1 = engine.NewCache();
  Tensor l1 = engine.Prefill(prompt.data(),
                             static_cast<int64_t>(prompt.size()), c1.get());
  ASSERT_NE(engine.prefix_cache(), nullptr);
  EXPECT_GT(engine.prefix_cache()->NodeCount(), 0);  // 2 full pages published
  EXPECT_GT(engine.prefix_cache()->CachedBytes(), 0);

  // Identical prompt: the second stream attaches the published pages by
  // reference and computes only the uncached tail — logits must not budge.
  auto c2 = engine.NewCache();
  Tensor l2 = engine.Prefill(prompt.data(),
                             static_cast<int64_t>(prompt.size()), c2.get());
  ExpectBitwiseEqual(l1, l2, "prefix-cache hit vs miss prefill logits");
  EXPECT_GT(hits.value(), hits0);
  EXPECT_GT(shared.value(), shared0);
  EXPECT_EQ(reused.value() - reused0, 8);  // both full pages attached
  EXPECT_GT(c2->SharedPages(), 0);
  EXPECT_LT(c2->OwnedBytes(), c2->SizeBytes());

  // A prompt sharing only the first page then diverging must still match a
  // cold engine (no prefix cache) bitwise: CoW isolates the divergence.
  const std::vector<int64_t> div = {1, 2, 3, 4, 99, 98, 97};
  auto c3 = engine.NewCache();
  Tensor l3 = engine.Prefill(div.data(), static_cast<int64_t>(div.size()),
                             c3.get());
  serve::EngineOptions cold_opts = opts;
  cold_opts.prefix_cache = false;
  serve::Engine cold(model, cold_opts);
  EXPECT_EQ(cold.prefix_cache(), nullptr);
  auto c4 = cold.NewCache();
  Tensor l4 = cold.Prefill(div.data(), static_cast<int64_t>(div.size()),
                           c4.get());
  ExpectBitwiseEqual(l3, l4, "divergent prefix-cache prefill vs cold");
}

// ---------------------------------------------------------------------------
// Tentpole: chunked prefill. Chunk boundaries never change completions, and
// a long prompt stalls a live stream's decode by at most one chunk.
// ---------------------------------------------------------------------------

TEST(ChunkedPrefill, CompletionsMatchGenerateOne) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);
  std::vector<serve::Request> reqs;
  for (int i = 0; i < 6; ++i) {
    serve::Request r;
    r.prompt.assign(static_cast<size_t>(3 + (i * 3) % 7), 0);
    for (size_t j = 0; j < r.prompt.size(); ++j) {
      r.prompt[j] = static_cast<int64_t>((i * 31 + j * 7) % engine.vocab());
    }
    r.max_new_tokens =
        engine.max_len() - static_cast<int64_t>(r.prompt.size()) + 1;
    r.seed = static_cast<uint64_t>(i);
    reqs.push_back(r);
  }
  std::vector<serve::Completion> want;
  for (const serve::Request& r : reqs) want.push_back(GenerateOne(engine, r));

  obs::Histogram& chunks =
      obs::MetricsRegistry::Global().histogram("serve.prefill_chunks");
  const int64_t count0 = chunks.count();
  serve::SchedulerOptions opts;
  opts.max_batch = 3;
  opts.prefill_chunk = 2;
  serve::RequestScheduler scheduler(engine, opts);
  std::vector<std::future<serve::Completion>> futures;
  for (const serve::Request& r : reqs) futures.push_back(scheduler.Submit(r));
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::Completion got = futures[i].get();
    EXPECT_EQ(got.tokens, want[i].tokens) << "request " << i;
    EXPECT_EQ(got.reason, want[i].reason) << "request " << i;
  }
  scheduler.Shutdown();
  // One histogram sample per completed prefill; prompts of 3..9 tokens in
  // chunks of 2 take 2..5 chunks each.
  EXPECT_EQ(chunks.count() - count0, static_cast<int64_t>(reqs.size()));
  EXPECT_GE(chunks.max(), 2);
}

TEST(ChunkedPrefill, LongPromptDelaysDecodeByAtMostOneChunk) {
  zoo::BertLikeModel model(zoo::BertConfig::MiniScale(), 7);
  serve::Engine engine(model);

  std::mutex mu;
  std::vector<serve::SchedulerStepInfo> steps;
  serve::SchedulerOptions opts;
  opts.max_batch = 4;
  opts.prefill_chunk = 3;
  opts.on_step = [&](const serve::SchedulerStepInfo& info) {
    std::lock_guard<std::mutex> lk(mu);
    steps.push_back(info);
  };
  serve::RequestScheduler scheduler(engine, opts);

  // A short stream with a long decode, then a long prompt (11 rows = 4
  // chunks of 3) that must not monopolize iterations.
  serve::Request short_req;
  short_req.prompt = {5, 17};
  short_req.max_new_tokens = 8;
  serve::Request long_req;
  long_req.prompt.assign(11, 0);
  for (size_t j = 0; j < long_req.prompt.size(); ++j) {
    long_req.prompt[j] = static_cast<int64_t>(j * 13 % engine.vocab());
  }
  long_req.max_new_tokens = 2;
  auto f1 = scheduler.Submit(short_req);
  auto f2 = scheduler.Submit(long_req);
  serve::Completion got_short = f1.get();
  serve::Completion got_long = f2.get();
  scheduler.Shutdown();

  EXPECT_EQ(got_short.tokens, GenerateOne(engine, short_req).tokens);
  EXPECT_EQ(got_long.tokens, GenerateOne(engine, long_req).tokens);

  bool interleaved = false;
  std::lock_guard<std::mutex> lk(mu);
  for (const serve::SchedulerStepInfo& info : steps) {
    // The stall bound: an iteration never computes more than one chunk of
    // prompt rows, and a decode-ready stream always decodes that iteration.
    EXPECT_LE(info.prefill_rows, opts.prefill_chunk);
    if (info.decoded > 0 && (info.prefilling > 0 || info.prefill_rows > 0)) {
      interleaved = true;
    }
  }
  EXPECT_TRUE(interleaved)
      << "long-prompt prefill never overlapped a decode step";
}

}  // namespace
}  // namespace nautilus
