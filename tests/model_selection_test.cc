// End-to-end tests of the ModelSelection API on mini workloads with real
// training, including the central equivalence property: Nautilus's
// materialized + fused execution is logically identical SGD to the naive
// current practice, so per-candidate validation metrics must match.
#include <filesystem>

#include <gtest/gtest.h>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

class ModelSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_ms_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

SystemConfig MiniConfig() {
  SystemConfig config;
  config.expected_max_records = 400;
  config.disk_budget_bytes = 64.0 * (1 << 20);
  config.memory_budget_bytes = 1.0 * (1ull << 30);
  config.workspace_bytes = 1 << 20;
  // Fast disk + slow compute: loading materialized features clearly beats
  // recomputation, so the planner keeps the materialized set and the
  // equivalence test exercises the store-backed training path. Overheads
  // scaled down to mini-run magnitudes.
  config.disk_bytes_per_second = 1.0 * (1ull << 30);
  config.flops_per_second = 2.0e8;
  config.per_model_setup_seconds = 0.01;
  config.per_epoch_overhead_seconds = 0.001;
  config.per_batch_overhead_seconds = 1e-4;
  return config;
}

Workload MiniWorkload(zoo::BertLikeModel* source) {
  Workload workload;
  Hyperparams hp;
  hp.batch_size = 10;
  hp.learning_rate = 5e-3;
  hp.epochs = 2;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          *source, zoo::BertFeature::kLastHidden, 3, "m0", 500),
      hp);
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          *source, zoo::BertFeature::kSumLast4, 3, "m1", 501),
      hp);
  Hyperparams hp2 = hp;
  hp2.learning_rate = 1e-3;
  hp2.epochs = 3;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          *source, zoo::BertFeature::kSecondLastHidden, 3, "m2", 502),
      hp2);
  // Same feature as m0 with a different learning rate: shares m0's loaded
  // unit, which gives fusion a positive saving even when everything is
  // materialized.
  Hyperparams hp3 = hp;
  hp3.learning_rate = 2e-3;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          *source, zoo::BertFeature::kLastHidden, 3, "m3", 503),
      hp3);
  return workload;
}

TEST_F(ModelSelectionTest, NautilusMatchesCurrentPracticeExactly) {
  // Two fresh copies of the same pretrained encoder and workload, one run
  // with every optimization on, one with the naive plan. Validation
  // accuracy and loss must agree per candidate per cycle (Section 5.2).
  zoo::BertLikeModel source_a(zoo::BertConfig::TinyScale(), 7);
  zoo::BertLikeModel source_b(zoo::BertConfig::TinyScale(), 7);
  data::LabeledDataset pool = data::GenerateTextPool(source_a, 240, 3, 99);

  ModelSelectionOptions nautilus_opts;
  nautilus_opts.seed = 13;
  ModelSelectionOptions naive_opts;
  naive_opts.materialization = MaterializationMode::kNone;
  naive_opts.fusion = false;
  naive_opts.full_checkpoints = true;
  naive_opts.seed = 13;

  ModelSelection nautilus(MiniWorkload(&source_a), MiniConfig(),
                          (dir_ / "nautilus").string(), nautilus_opts);
  ModelSelection naive(MiniWorkload(&source_b), MiniConfig(),
                       (dir_ / "naive").string(), naive_opts);

  data::LabelingSimulator sim_a(pool, 80, 0.75);
  data::LabelingSimulator sim_b(pool, 80, 0.75);
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto batch_a = sim_a.NextCycle();
    auto batch_b = sim_b.NextCycle();
    FitResult r1 = nautilus.Fit(batch_a.train, batch_a.valid);
    FitResult r2 = naive.Fit(batch_b.train, batch_b.valid);
    ASSERT_EQ(r1.evals.size(), r2.evals.size());
    for (size_t m = 0; m < r1.evals.size(); ++m) {
      EXPECT_NEAR(r1.evals[m].val_accuracy, r2.evals[m].val_accuracy, 1e-5)
          << "cycle " << cycle << " model " << m;
      EXPECT_NEAR(r1.evals[m].val_loss, r2.evals[m].val_loss, 1e-3)
          << "cycle " << cycle << " model " << m;
    }
    EXPECT_EQ(r1.best_model, r2.best_model) << "cycle " << cycle;
  }

  // Nautilus must have materialized something and fused something here.
  bool any_materialized = false;
  for (bool b : nautilus.materialization().materialize) {
    any_materialized = any_materialized || b;
  }
  EXPECT_TRUE(any_materialized);
  EXPECT_LT(nautilus.plan_groups().size(), nautilus.workload().size());
}

TEST_F(ModelSelectionTest, AccuracyImprovesWithMoreData) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 21);
  data::LabeledDataset pool =
      data::GenerateTextPool(source, 400, 3, 123, /*label_noise=*/0.05);
  ModelSelectionOptions opts;
  opts.seed = 5;
  SystemConfig config = MiniConfig();
  config.expected_max_records = 600;
  ModelSelection selection(MiniWorkload(&source), config, dir_.string(),
                           opts);
  data::LabelingSimulator sim(pool, 100, 0.75);
  float first = 0.0f;
  float last = 0.0f;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto batch = sim.NextCycle();
    FitResult result = selection.Fit(batch.train, batch.valid);
    if (cycle == 0) first = result.best_accuracy;
    last = result.best_accuracy;
  }
  // Teacher-labeled task: more labeled data should help (allowing noise).
  EXPECT_GT(last, first - 0.05f);
  EXPECT_GT(last, 0.4f);  // better than chance (1/3)
}

TEST_F(ModelSelectionTest, BackoffDoublesMaxRecordsAndReplans) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 31);
  data::LabeledDataset pool = data::GenerateTextPool(source, 300, 3, 321);
  ModelSelectionOptions opts;
  SystemConfig config = MiniConfig();
  config.expected_max_records = 100;  // will overflow on cycle 2
  ModelSelection selection(MiniWorkload(&source), config, dir_.string(),
                           opts);
  EXPECT_EQ(selection.current_max_records(), 100);
  data::LabelingSimulator sim(pool, 80, 0.75);
  auto c1 = sim.NextCycle();
  FitResult r1 = selection.Fit(c1.train, c1.valid);
  EXPECT_EQ(selection.current_max_records(), 100);
  EXPECT_EQ(r1.seconds_reoptimize, 0.0);
  auto c2 = sim.NextCycle();
  FitResult r2 = selection.Fit(c2.train, c2.valid);
  EXPECT_EQ(selection.current_max_records(), 200);
  EXPECT_GT(r2.seconds_reoptimize, 0.0);
  // Training still works after the re-plan.
  EXPECT_GE(r2.best_accuracy, 0.0f);
}

TEST_F(ModelSelectionTest, MatAllBaselineRunsAndMaterializesEverything) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 41);
  data::LabeledDataset pool = data::GenerateTextPool(source, 160, 3, 17);
  ModelSelectionOptions opts;
  opts.materialization = MaterializationMode::kAll;
  opts.fusion = false;
  ModelSelection selection(MiniWorkload(&source), MiniConfig(),
                           dir_.string(), opts);
  // Every non-input unit materialized.
  const auto& mm = selection.multi_model();
  for (size_t u = 0; u < mm.units().size(); ++u) {
    if (!mm.units()[u].is_input) {
      EXPECT_TRUE(selection.materialization().materialize[u]);
    }
  }
  data::LabelingSimulator sim(pool, 80, 0.75);
  auto batch = sim.NextCycle();
  FitResult result = selection.Fit(batch.train, batch.valid);
  EXPECT_GE(result.best_model, 0);
  // MAT-ALL reads strictly more bytes than it would need to.
  EXPECT_GT(selection.io_stats().bytes_read(), 0);
}

TEST_F(ModelSelectionTest, CyclesRetrainFromInitialWeights) {
  // Feeding the *same* batch twice must produce identical metrics: each
  // cycle restarts from the initialized checkpoints.
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 51);
  data::LabeledDataset pool = data::GenerateTextPool(source, 80, 3, 777);
  ModelSelectionOptions opts;
  SystemConfig config = MiniConfig();
  ModelSelection selection(MiniWorkload(&source), config, dir_.string(),
                           opts);
  data::LabelingSimulator sim(pool, 80, 0.75);
  auto batch = sim.NextCycle();

  // Cycle 0 on the batch.
  FitResult r1 = selection.Fit(batch.train, batch.valid);
  // A second, fresh selection over the same data must reproduce cycle 0's
  // numbers exactly, using identical layer objects would be ideal but a
  // fresh encoder with the same seed is equivalent.
  zoo::BertLikeModel source2(zoo::BertConfig::TinyScale(), 51);
  ModelSelection selection2(MiniWorkload(&source2), config,
                            (dir_ / "b").string(), opts);
  FitResult r2 = selection2.Fit(batch.train, batch.valid);
  for (size_t m = 0; m < r1.evals.size(); ++m) {
    EXPECT_FLOAT_EQ(r1.evals[m].val_accuracy, r2.evals[m].val_accuracy);
  }
}

}  // namespace
}  // namespace core
}  // namespace nautilus
