#include <gtest/gtest.h>

#include "nautilus/data/dataset.h"
#include "nautilus/data/synthetic.h"

namespace nautilus {
namespace data {
namespace {

TEST(LabeledDatasetTest, AppendAndSlice) {
  LabeledDataset a(Tensor(Shape({2, 3})), {0, 1});
  LabeledDataset b(Tensor(Shape({1, 3})), {2});
  a.Append(b);
  EXPECT_EQ(a.size(), 3);
  LabeledDataset s = a.Slice(1, 3);
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.labels()[1], 2);
}

TEST(LabeledDatasetTest, Gather) {
  Tensor x(Shape({3, 2}), {0, 0, 1, 1, 2, 2});
  LabeledDataset d(x, {10, 11, 12});
  LabeledDataset g = d.Gather({2, 0});
  EXPECT_EQ(g.labels()[0], 12);
  EXPECT_EQ(g.labels()[1], 10);
  EXPECT_FLOAT_EQ(g.inputs().at(0), 2.0f);
}

TEST(EvolvingDatasetTest, SnapshotsAccumulate) {
  EvolvingDataset ds;
  ds.AddCycle(LabeledDataset(Tensor(Shape({4, 2})), {0, 0, 1, 1}),
              LabeledDataset(Tensor(Shape({1, 2})), {0}));
  ds.AddCycle(LabeledDataset(Tensor(Shape({4, 2})), {1, 1, 0, 0}),
              LabeledDataset(Tensor(Shape({1, 2})), {1}));
  EXPECT_EQ(ds.cycles(), 2);
  EXPECT_EQ(ds.train().size(), 8);
  EXPECT_EQ(ds.valid().size(), 2);
}

TEST(SyntheticTextTest, PoolHasValidTokensAndLabels) {
  zoo::BertLikeModel encoder(zoo::BertConfig::TinyScale(), 3);
  LabeledDataset pool = GenerateTextPool(encoder, 60, 3, 11);
  EXPECT_EQ(pool.size(), 60);
  EXPECT_EQ(pool.inputs().shape(),
            Shape({60, encoder.config().seq_len}));
  int label_counts[3] = {0, 0, 0};
  for (int32_t label : pool.labels()) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 3);
    ++label_counts[label];
  }
  for (int64_t i = 0; i < pool.inputs().NumElements(); ++i) {
    const float v = pool.inputs().at(i);
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, static_cast<float>(encoder.config().vocab));
    EXPECT_EQ(v, std::floor(v));
  }
}

TEST(SyntheticTextTest, DeterministicGivenSeed) {
  zoo::BertLikeModel encoder(zoo::BertConfig::TinyScale(), 3);
  LabeledDataset a = GenerateTextPool(encoder, 40, 2, 5);
  LabeledDataset b = GenerateTextPool(encoder, 40, 2, 5);
  EXPECT_EQ(Tensor::MaxAbsDiff(a.inputs(), b.inputs()), 0.0f);
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(SyntheticImageTest, ClassesAreSeparableByPrototype) {
  zoo::ResNetConfig cfg = zoo::ResNetConfig::MiniScale();
  LabeledDataset pool = GenerateImagePool(cfg, 100, 2, 9, /*noise=*/0.5f);
  EXPECT_EQ(pool.size(), 100);
  // Nearest-prototype classification on the raw pixels should beat chance
  // comfortably: estimate prototypes from the first half, evaluate on the
  // second half.
  const int64_t elems = pool.inputs().shape().ElementsPerRecord();
  std::vector<double> mean0(static_cast<size_t>(elems), 0.0);
  std::vector<double> mean1(static_cast<size_t>(elems), 0.0);
  int n0 = 0, n1 = 0;
  for (int64_t i = 0; i < 50; ++i) {
    const float* rec = pool.inputs().data() + i * elems;
    auto& mean = pool.labels()[static_cast<size_t>(i)] == 0 ? mean0 : mean1;
    (pool.labels()[static_cast<size_t>(i)] == 0 ? n0 : n1)++;
    for (int64_t j = 0; j < elems; ++j) mean[static_cast<size_t>(j)] += rec[j];
  }
  for (int64_t j = 0; j < elems; ++j) {
    mean0[static_cast<size_t>(j)] /= std::max(n0, 1);
    mean1[static_cast<size_t>(j)] /= std::max(n1, 1);
  }
  int correct = 0;
  for (int64_t i = 50; i < 100; ++i) {
    const float* rec = pool.inputs().data() + i * elems;
    double d0 = 0.0, d1 = 0.0;
    for (int64_t j = 0; j < elems; ++j) {
      d0 += (rec[j] - mean0[static_cast<size_t>(j)]) *
            (rec[j] - mean0[static_cast<size_t>(j)]);
      d1 += (rec[j] - mean1[static_cast<size_t>(j)]) *
            (rec[j] - mean1[static_cast<size_t>(j)]);
    }
    const int32_t pred = d0 <= d1 ? 0 : 1;
    if (pred == pool.labels()[static_cast<size_t>(i)]) ++correct;
  }
  EXPECT_GT(correct, 40);  // >80% accuracy
}

TEST(LabelingSimulatorTest, ReleasesCyclesWithSplit) {
  zoo::ResNetConfig cfg = zoo::ResNetConfig::MiniScale();
  LabeledDataset pool = GenerateImagePool(cfg, 50, 2, 13);
  LabelingSimulator sim(pool, /*records_per_cycle=*/20, /*train_fraction=*/0.8);
  ASSERT_TRUE(sim.HasNextCycle());
  auto cycle1 = sim.NextCycle();
  EXPECT_EQ(cycle1.train.size(), 16);
  EXPECT_EQ(cycle1.valid.size(), 4);
  auto cycle2 = sim.NextCycle();
  (void)cycle2;
  auto cycle3 = sim.NextCycle();  // only 10 left
  EXPECT_EQ(cycle3.train.size(), 8);
  EXPECT_EQ(cycle3.valid.size(), 2);
  EXPECT_FALSE(sim.HasNextCycle());
  EXPECT_EQ(sim.cycles_released(), 3);
}

TEST(LabelingSimulatorTest, LabelingTimeScalesWithRate) {
  zoo::ResNetConfig cfg = zoo::ResNetConfig::MiniScale();
  LabeledDataset pool = GenerateImagePool(cfg, 10, 2, 13);
  LabelingSimulator sim(pool, 10, 0.8);
  EXPECT_DOUBLE_EQ(sim.CycleLabelingSeconds(0.5), 5.0);
  EXPECT_DOUBLE_EQ(sim.CycleLabelingSeconds(8.0), 80.0);
}

}  // namespace
}  // namespace data
}  // namespace nautilus
