// Focused tests of the Materializer, Trainer, and simulated executor.
#include <filesystem>

#include <gtest/gtest.h>

#include "nautilus/core/materializer.h"
#include "nautilus/core/planner.h"
#include "nautilus/core/simulator.h"
#include "nautilus/core/trainer.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/graph/executor.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_trainer_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

SystemConfig FastDiskConfig() {
  SystemConfig config;
  config.expected_max_records = 500;
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 1ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  return config;
}

Workload TwoModelWorkload(zoo::BertLikeModel* source, int64_t epochs_b) {
  Workload workload;
  Hyperparams hp;
  hp.batch_size = 8;
  hp.learning_rate = 1e-3;
  hp.epochs = 2;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          *source, zoo::BertFeature::kLastHidden, 3, "a", 100),
      hp);
  hp.epochs = epochs_b;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          *source, zoo::BertFeature::kLastHidden, 3, "b", 101),
      hp);
  return workload;
}

TEST_F(TrainerTest, IncrementalMaterializationMatchesOneShot) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 1);
  Workload workload = TwoModelWorkload(&source, 2);
  SystemConfig config = FastDiskConfig();
  MultiModelGraph mm(&workload, config);

  Rng rng(5);
  Tensor all_inputs(Shape({30, source.config().seq_len}));
  for (int64_t i = 0; i < all_inputs.NumElements(); ++i) {
    all_inputs.at(i) =
        static_cast<float>(rng.UniformInt(source.config().vocab));
  }
  std::vector<bool> chosen(mm.units().size(), false);
  // Materialize the deepest non-input unit.
  chosen.back() = true;

  storage::IoStats stats;
  storage::TensorStore inc_store((dir_ / "inc").string(), &stats);
  storage::TensorStore full_store((dir_ / "full").string(), &stats);
  Materializer inc(&mm, &inc_store);
  Materializer full(&mm, &full_store);

  ASSERT_TRUE(inc.MaterializeIncrement(chosen, all_inputs.SliceRows(0, 10),
                                       "train")
                  .ok());
  ASSERT_TRUE(inc.MaterializeIncrement(chosen, all_inputs.SliceRows(10, 30),
                                       "train")
                  .ok());
  ASSERT_TRUE(full.MaterializeIncrement(chosen, all_inputs, "train").ok());

  const std::string key =
      Materializer::SplitKey(mm.units().back(), "train");
  auto a = inc_store.Get(key);
  auto b = full_store.Get(key);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shape(), b->shape());
  EXPECT_EQ(Tensor::MaxAbsDiff(*a, *b), 0.0f);
}

TEST_F(TrainerTest, MaterializerSkipsWhenNothingChosen) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 2);
  Workload workload = TwoModelWorkload(&source, 2);
  SystemConfig config = FastDiskConfig();
  MultiModelGraph mm(&workload, config);
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  Materializer materializer(&mm, &store);
  Tensor inputs(Shape({4, source.config().seq_len}));
  ASSERT_TRUE(materializer
                  .MaterializeIncrement(
                      std::vector<bool>(mm.units().size(), false), inputs,
                      "train")
                  .ok());
  EXPECT_EQ(stats.bytes_written(), 0);
  EXPECT_EQ(materializer.flops_spent(), 0.0);
}

TEST_F(TrainerTest, FusedMixedEpochBranchesMatchSeparateRuns) {
  // Branch b trains 3 epochs, branch a only 2 (deactivated in epoch 3);
  // both must match their singleton-group counterparts exactly.
  SystemConfig config = FastDiskConfig();
  data::LabeledDataset train, valid;
  {
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 3);
    train = data::GenerateTextPool(source, 24, 3, 9);
    valid = data::GenerateTextPool(source, 8, 3, 10);
  }

  float fused_acc[2];
  float separate_acc[2];
  for (int mode = 0; mode < 2; ++mode) {
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 3);
    Workload workload = TwoModelWorkload(&source, 3);
    MultiModelGraph mm(&workload, config);
    std::vector<bool> no_mat(mm.units().size(), false);
    storage::IoStats stats;
    storage::TensorStore store((dir_ / std::to_string(mode)).string(),
                               &stats);
    storage::CheckpointStore ckpts(
        (dir_ / (std::to_string(mode) + "c")).string(), &stats);
    Trainer trainer(&store, &ckpts, config);
    Trainer::Options options;
    options.seed = 77;

    if (mode == 0) {
      ExecutionGroup fused = BuildExecutionGroup(mm, {0, 1}, no_mat);
      ASSERT_EQ(fused.max_epochs, 3);
      GroupRunStats stats_run =
          trainer.TrainGroup(fused, workload, train, valid, options);
      for (const BranchEval& eval : stats_run.branches) {
        fused_acc[eval.model_index] = eval.val_accuracy;
      }
    } else {
      for (int m = 0; m < 2; ++m) {
        ExecutionGroup single = BuildExecutionGroup(mm, {m}, no_mat);
        GroupRunStats stats_run =
            trainer.TrainGroup(single, workload, train, valid, options);
        separate_acc[stats_run.branches[0].model_index] =
            stats_run.branches[0].val_accuracy;
      }
    }
  }
  EXPECT_FLOAT_EQ(fused_acc[0], separate_acc[0]);
  EXPECT_FLOAT_EQ(fused_acc[1], separate_acc[1]);
}

TEST_F(TrainerTest, SimulatorBranchDeactivationReducesCost) {
  nn::ProfileOnlyScope profile_only;
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 4);
  SystemConfig config = FastDiskConfig();
  Workload short_epochs = TwoModelWorkload(&source, 2);
  Workload long_epochs = TwoModelWorkload(&source, 6);
  MultiModelGraph mm_short(&short_epochs, config);
  MultiModelGraph mm_long(&long_epochs, config);
  std::vector<bool> no_mat_s(mm_short.units().size(), false);
  std::vector<bool> no_mat_l(mm_long.units().size(), false);
  ExecutionGroup g_short = BuildExecutionGroup(mm_short, {0, 1}, no_mat_s);
  ExecutionGroup g_long = BuildExecutionGroup(mm_long, {0, 1}, no_mat_l);
  const SimCosts c_short =
      SimulateGroupTraining(g_short, 400, 100, 1e6, config);
  const SimCosts c_long =
      SimulateGroupTraining(g_long, 400, 100, 1e6, config);
  // Branch 1 training 6 epochs instead of 2 costs more, but less than 3x
  // the whole group (branch 0 deactivates after epoch 2).
  EXPECT_GT(c_long.flops, c_short.flops);
  EXPECT_LT(c_long.flops, 3.0 * c_short.flops);
}

TEST_F(TrainerTest, SimulatedMaterializationCountsAncestors) {
  nn::ProfileOnlyScope profile_only;
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 5);
  SystemConfig config = FastDiskConfig();
  Workload workload = TwoModelWorkload(&source, 2);
  MultiModelGraph mm(&workload, config);
  // Choosing only the deepest unit still has to compute the whole chain.
  std::vector<bool> deepest(mm.units().size(), false);
  deepest.back() = true;
  std::vector<bool> all(mm.units().size(), true);
  const SimCosts c_deep = SimulateMaterialization(mm, deepest, 100, config);
  const SimCosts c_all = SimulateMaterialization(mm, all, 100, config);
  EXPECT_GT(c_deep.flops, 0.0);
  EXPECT_DOUBLE_EQ(c_deep.flops, c_all.flops);  // same ancestor closure
  EXPECT_LT(c_deep.bytes_written, c_all.bytes_written);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
