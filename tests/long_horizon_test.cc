// Long-horizon integration: a ten-cycle mini run through the full API,
// exercising incremental materialization, two exponential-backoff re-plans,
// growing snapshots, and stable best-model selection — the closest test
// analogue of the paper's end-to-end protocol.
#include <filesystem>

#include <gtest/gtest.h>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

TEST(LongHorizonTest, TenCyclesWithBackoffsStayConsistent) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_long_horizon";
  std::filesystem::remove_all(dir);

  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 61);
  Workload workload;
  Hyperparams hp;
  hp.batch_size = 10;
  hp.learning_rate = 2e-3;
  hp.epochs = 1;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          source, zoo::BertFeature::kLastHidden, 3, "lh_m0", 700),
      hp);
  workload.emplace_back(
      zoo::BuildBertAdapterModel(source, 1, 3, "lh_m1", 701), hp);
  workload.emplace_back(
      zoo::BuildBertFineTuneModel(source, 1, 3, "lh_m2", 702), hp);

  SystemConfig config;
  config.expected_max_records = 80;  // forces two doublings over 10 cycles
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 2ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;

  ModelSelection selection(workload, config, dir.string(), {});
  data::LabeledDataset pool = data::GenerateTextPool(source, 400, 3, 62);
  data::LabelingSimulator sim(pool, 40, 0.75);

  int replans = 0;
  int64_t prev_train = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    auto batch = sim.NextCycle();
    FitResult result = selection.Fit(batch.train, batch.valid);
    EXPECT_EQ(result.cycle, cycle);
    EXPECT_EQ(result.evals.size(), 3u);
    EXPECT_GE(result.best_model, 0);
    EXPECT_LT(result.best_model, 3);
    EXPECT_GE(result.best_accuracy, 0.0f);
    EXPECT_LE(result.best_accuracy, 1.0f);
    // Snapshots grow by exactly the labeled batch.
    EXPECT_EQ(selection.dataset().train().size(), prev_train + 30);
    prev_train = selection.dataset().train().size();
    if (result.seconds_reoptimize > 0.0) ++replans;
    // r never lags the data.
    EXPECT_GE(selection.current_max_records(),
              selection.dataset().train().size() +
                  selection.dataset().valid().size());
  }
  EXPECT_EQ(selection.cycles_completed(), 10);
  // 400 records vs r starting at 80: 80 -> 160 -> 320 -> 640.
  EXPECT_EQ(selection.current_max_records(), 640);
  EXPECT_GE(replans, 2);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
