#include <gtest/gtest.h>

#include "nautilus/util/logging.h"
#include "nautilus/util/random.h"
#include "nautilus/util/status.h"
#include "nautilus/util/stopwatch.h"
#include "nautilus/util/strings.h"

namespace nautilus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailingOp() { return Status::IoError("disk full"); }

Status Chained() {
  NAUTILUS_RETURN_IF_ERROR(FailingOp());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Chained().code(), StatusCode::kIoError);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, NormalHasRoughlyZeroMean) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(1.0f);
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MiB");
  EXPECT_EQ(HumanBytes(25.0 * 1024 * 1024 * 1024), "25.00 GiB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(12.0), "12.00 s");
  EXPECT_EQ(HumanSeconds(90.0), "1.50 min");
  EXPECT_EQ(HumanSeconds(7200.0), "2.00 h");
}

TEST(StringsTest, Join) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(Join(v, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old);
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  NAUTILUS_CHECK(true) << "never printed";
  NAUTILUS_CHECK_EQ(1, 1);
  NAUTILUS_CHECK_LT(1, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(NAUTILUS_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(NAUTILUS_CHECK_EQ(1, 2), "Check failed");
}

}  // namespace
}  // namespace nautilus
