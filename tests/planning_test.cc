// Property tests for the optimal-reuse-plan solver: exact agreement with
// exhaustive search over random DAG instances.
#include <gtest/gtest.h>

#include "nautilus/core/planning.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace core {
namespace {

// Exhaustive reference: try all 3^n action assignments, keep the cheapest
// legal one.
double BruteForcePlan(const std::vector<PlanningNode>& nodes) {
  const int n = static_cast<int>(nodes.size());
  double best = 1e18;
  std::vector<int> actions(static_cast<size_t>(n), 0);  // 0 prune 1 comp 2 load
  while (true) {
    bool legal = true;
    double cost = 0.0;
    for (int v = 0; v < n && legal; ++v) {
      const PlanningNode& node = nodes[static_cast<size_t>(v)];
      const int a = actions[static_cast<size_t>(v)];
      if (a == 0) {
        if (node.forced_present) legal = false;
      } else if (a == 1) {
        if (!node.can_compute) legal = false;
        for (int p : node.parents) {
          if (actions[static_cast<size_t>(p)] == 0) legal = false;
        }
        cost += node.compute_cost;
      } else {
        if (!node.can_load) legal = false;
        cost += node.load_cost;
      }
    }
    if (legal) best = std::min(best, cost);
    // Increment base-3 counter.
    int i = 0;
    while (i < n) {
      if (++actions[static_cast<size_t>(i)] < 3) break;
      actions[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return best;
}

TEST(ReusePlanTest, ChainPrefersLoadWhenCheaper) {
  // input -> frozen(a) -> trainable(b=output). a materialized with load 1,
  // compute 10; input load 5. Loading a lets the input be pruned.
  std::vector<PlanningNode> nodes(3);
  nodes[0].can_compute = false;
  nodes[0].can_load = true;
  nodes[0].load_cost = 5.0;
  nodes[1].parents = {0};
  nodes[1].compute_cost = 10.0;
  nodes[1].can_load = true;
  nodes[1].load_cost = 1.0;
  nodes[2].parents = {1};
  nodes[2].compute_cost = 3.0;
  nodes[2].forced_present = true;
  auto plan = SolveOptimalReusePlan(nodes);
  EXPECT_EQ(plan.actions[0], NodeAction::kPruned);
  EXPECT_EQ(plan.actions[1], NodeAction::kLoaded);
  EXPECT_EQ(plan.actions[2], NodeAction::kComputed);
  EXPECT_DOUBLE_EQ(plan.total_cost, 4.0);
}

TEST(ReusePlanTest, ChainPrefersComputeWhenLoadExpensive) {
  std::vector<PlanningNode> nodes(3);
  nodes[0].can_compute = false;
  nodes[0].can_load = true;
  nodes[0].load_cost = 1.0;
  nodes[1].parents = {0};
  nodes[1].compute_cost = 2.0;
  nodes[1].can_load = true;
  nodes[1].load_cost = 50.0;  // huge feature tensor
  nodes[2].parents = {1};
  nodes[2].compute_cost = 3.0;
  nodes[2].forced_present = true;
  auto plan = SolveOptimalReusePlan(nodes);
  EXPECT_EQ(plan.actions[0], NodeAction::kLoaded);
  EXPECT_EQ(plan.actions[1], NodeAction::kComputed);
  EXPECT_DOUBLE_EQ(plan.total_cost, 6.0);
}

TEST(ReusePlanTest, SharedParentCountedOnce) {
  // Diamond: input -> a -> {b, c} with b and c both outputs; a's cost must
  // be paid once, not per consumer.
  std::vector<PlanningNode> nodes(4);
  nodes[0].can_compute = false;
  nodes[0].can_load = true;
  nodes[0].load_cost = 1.0;
  nodes[1].parents = {0};
  nodes[1].compute_cost = 7.0;
  nodes[2].parents = {1};
  nodes[2].compute_cost = 1.0;
  nodes[2].forced_present = true;
  nodes[3].parents = {1};
  nodes[3].compute_cost = 1.0;
  nodes[3].forced_present = true;
  auto plan = SolveOptimalReusePlan(nodes);
  EXPECT_DOUBLE_EQ(plan.total_cost, 10.0);
}

TEST(ReusePlanTest, RandomInstancesMatchBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(7));  // up to 8 nodes
    std::vector<PlanningNode> nodes(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      PlanningNode& node = nodes[static_cast<size_t>(v)];
      if (v == 0) {
        node.can_compute = false;
        node.can_load = true;
        node.load_cost = std::round(rng.Uniform(0.0, 9.0));
      } else {
        // Random parents among earlier nodes (at least one).
        for (int p = 0; p < v; ++p) {
          if (rng.Uniform() < 0.4) node.parents.push_back(p);
        }
        if (node.parents.empty()) {
          node.parents.push_back(static_cast<int>(rng.UniformInt(v)));
        }
        node.compute_cost = std::round(rng.Uniform(0.0, 9.0));
        if (rng.Uniform() < 0.5) {
          node.can_load = true;
          node.load_cost = std::round(rng.Uniform(0.0, 9.0));
        }
      }
    }
    nodes[static_cast<size_t>(n - 1)].forced_present = true;
    if (rng.Uniform() < 0.3) {
      nodes[static_cast<size_t>(rng.UniformInt(n))].forced_present = true;
    }
    // A forced load-incapable node must be computable; guaranteed since
    // only node 0 is load-only and forcing it is fine (it can load).
    auto plan = SolveOptimalReusePlan(nodes);
    const double ref = BruteForcePlan(nodes);
    EXPECT_NEAR(plan.total_cost, ref, 1e-6) << "trial " << trial;

    // Validate the returned plan's legality, not just its cost.
    for (int v = 0; v < n; ++v) {
      const PlanningNode& node = nodes[static_cast<size_t>(v)];
      const NodeAction a = plan.actions[static_cast<size_t>(v)];
      if (node.forced_present) {
        EXPECT_NE(a, NodeAction::kPruned);
      }
      if (a == NodeAction::kComputed) {
        EXPECT_TRUE(node.can_compute);
        for (int p : node.parents) {
          EXPECT_NE(plan.actions[static_cast<size_t>(p)],
                    NodeAction::kPruned)
              << "computed node with pruned parent, trial " << trial;
        }
      }
      if (a == NodeAction::kLoaded) {
        EXPECT_TRUE(node.can_load);
      }
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace nautilus
