// Storage integrity & crash recovery: checksum verification on every read
// path, quarantine-on-scrub, torn-append detection, atomic checkpoints, and
// the trainer's recompute-from-frozen-prefix fallback. Injected corruption
// must surface as IoError (or a recovered run), never as wrong floats.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/obs/metrics.h"
#include "nautilus/storage/fault_injection.h"
#include "nautilus/storage/integrity.h"
#include "nautilus/storage/io_stats.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/util/random.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace storage {
namespace {

namespace fs = std::filesystem;

// Locates the single shard file whose name contains `hint` ("" = any).
fs::path FindShard(const fs::path& dir, const std::string& hint = "") {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".tns") continue;
    if (hint.empty() ||
        entry.path().filename().string().find(hint) != std::string::npos) {
      return entry.path();
    }
  }
  return {};
}

void FlipByte(const fs::path& path, int64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  unsigned char byte = 0;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= 0x10;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);
}

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nautilus_integrity_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    FaultInjector::Global().Disarm();
  }
  void TearDown() override {
    FaultInjector::Global().Disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// CRC kernel & footer format
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, Crc32cKnownVectors) {
  // RFC 3720 test vector for CRC32C.
  EXPECT_EQ(Crc32c(0, "123456789", 9), 0xe3069283u);
  EXPECT_EQ(Crc32c(0, "", 0), 0u);
  const std::vector<char> zeros(32, 0);
  EXPECT_EQ(Crc32c(0, zeros.data(), zeros.size()), 0x8a9136aau);
}

TEST_F(IntegrityTest, Crc32cExtendsIncrementally) {
  Rng rng(7);
  std::vector<char> data(4097);
  for (char& c : data) c = static_cast<char>(rng.Uniform() * 255.0);
  const uint32_t whole = Crc32c(0, data.data(), data.size());
  uint32_t chunked = 0;
  for (size_t pos = 0; pos < data.size(); pos += 555) {
    const size_t n = std::min<size_t>(555, data.size() - pos);
    chunked = Crc32c(chunked, data.data() + pos, n);
  }
  EXPECT_EQ(whole, chunked);
}

TEST_F(IntegrityTest, FooterRoundTripAndTearDetection) {
  ShardFooter footer;
  footer.header_crc = 0xdeadbeef;
  footer.payload_crc = 0x12345678;
  footer.payload_bytes = 1 << 20;
  char bytes[kShardFooterBytes];
  EncodeShardFooter(footer, bytes);
  ShardFooter decoded;
  ASSERT_EQ(DecodeShardFooter(bytes, &decoded), FooterState::kValid);
  EXPECT_EQ(decoded.header_crc, footer.header_crc);
  EXPECT_EQ(decoded.payload_crc, footer.payload_crc);
  EXPECT_EQ(decoded.payload_bytes, footer.payload_bytes);
  EXPECT_EQ(decoded.version, kShardFooterVersion);
  // Damage inside the checksummed span: torn, not absent.
  char torn[kShardFooterBytes];
  std::copy(bytes, bytes + kShardFooterBytes, torn);
  torn[5] ^= 0x01;
  EXPECT_EQ(DecodeShardFooter(torn, &decoded), FooterState::kTorn);
  // No magic at all: candidate legacy file.
  char absent[kShardFooterBytes] = {0};
  EXPECT_EQ(DecodeShardFooter(absent, &decoded), FooterState::kAbsent);
}

TEST_F(IntegrityTest, DurabilityParsing) {
  Durability d = Durability::kFsync;
  EXPECT_TRUE(ParseDurability("none", &d));
  EXPECT_EQ(d, Durability::kNone);
  EXPECT_TRUE(ParseDurability("flush", &d));
  EXPECT_EQ(d, Durability::kFlush);
  EXPECT_TRUE(ParseDurability("fsync", &d));
  EXPECT_EQ(d, Durability::kFsync);
  EXPECT_FALSE(ParseDurability("fsycn", &d));
  EXPECT_STREQ(DurabilityName(Durability::kFlush), "flush");
}

TEST_F(IntegrityTest, FaultInjectorSpecParsing) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.ArmFromSpec("truncate:2"));
  EXPECT_TRUE(injector.armed());
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_TRUE(injector.ArmFromSpec("bitflip:1"));
  injector.Disarm();
  EXPECT_TRUE(injector.ArmFromSpec("crash_after_write:10"));
  injector.Disarm();
  EXPECT_FALSE(injector.ArmFromSpec("truncate"));
  EXPECT_FALSE(injector.ArmFromSpec("truncate:"));
  EXPECT_FALSE(injector.ArmFromSpec("truncate:0"));
  EXPECT_FALSE(injector.ArmFromSpec("melt:1"));
  EXPECT_FALSE(injector.armed());
}

// ---------------------------------------------------------------------------
// Read-path verification matrix
// ---------------------------------------------------------------------------

// Every read path must reject a truncated shard with IoError.
TEST_F(IntegrityTest, TruncatedShardFailsEveryReadPath) {
  IoStats stats;
  Rng rng(3);
  const Tensor value = Tensor::Randn(Shape({64, 16}), &rng, 1.0f);
  {
    TensorStore store(dir_.string(), &stats);
    FaultInjector::Global().Arm(FaultInjector::Kind::kTruncate, 1);
    ASSERT_TRUE(store.Put("t", value).ok());
    EXPECT_FALSE(FaultInjector::Global().armed());
  }
  TensorStore store(dir_.string(), &stats);
  EXPECT_EQ(store.Get("t").status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.GetView("t").status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.GetRows("t", 0, 8).status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.GetRowsView("t", 0, 8).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(store.GetBatch({{"t", 0, -1}}).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(store.NumRows("t"), 0);
}

// A single flipped payload bit must fail both the mmap path and the
// buffered forced-disk path — even when the flip is outside the rows read.
TEST_F(IntegrityTest, BitflippedPayloadFailsReads) {
  IoStats stats;
  Rng rng(4);
  const int64_t before =
      obs::MetricsRegistry::Global().counter("store.corruption_detected")
          .value();
  {
    TensorStore store(dir_.string(), &stats);
    FaultInjector::Global().Arm(FaultInjector::Kind::kBitflip, 1);
    ASSERT_TRUE(store.Put("t", Tensor::Randn(Shape({64, 16}), &rng, 1.0f))
                    .ok());
  }
  TensorStore store(dir_.string(), &stats);
  EXPECT_EQ(store.Get("t").status().code(), StatusCode::kIoError);
  // Cold slice read of the FIRST rows: the flip sits mid-file, outside the
  // slice, and must still be caught (whole-payload streaming verify).
  EXPECT_EQ(store.GetRows("t", 0, 2).status().code(), StatusCode::kIoError);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .counter("store.corruption_detected")
                .value(),
            before);
}

TEST_F(IntegrityTest, TornFooterFailsReads) {
  IoStats stats;
  {
    TensorStore store(dir_.string(), &stats);
    ASSERT_TRUE(store.Put("t", Tensor(Shape({8, 4}))).ok());
  }
  const fs::path shard = FindShard(dir_);
  ASSERT_FALSE(shard.empty());
  // Flip a byte inside the footer's checksummed span (version field).
  FlipByte(shard, static_cast<int64_t>(fs::file_size(shard)) -
                      kShardFooterBytes + 17);
  TensorStore store(dir_.string(), &stats);
  EXPECT_EQ(store.Get("t").status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.GetRows("t", 0, 1).status().code(), StatusCode::kIoError);
}

// A crashed append must never let a reopened store serve rows past the
// durable payload; the pre-mutation cache invalidation must also keep the
// same store object from serving its stale cached shard.
TEST_F(IntegrityTest, TornAppendNeverServesPartialRows) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor a(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b(Shape({1, 3}), {7, 8, 9});
  ASSERT_TRUE(store.AppendRows("f", a).ok());
  ASSERT_TRUE(store.Get("f").ok());  // now cached
  FaultInjector::Global().Arm(FaultInjector::Kind::kTruncate, 1);
  ASSERT_TRUE(store.AppendRows("f", b).ok());
  // Same store object: the cache was invalidated, the torn file detected.
  EXPECT_EQ(store.Get("f").status().code(), StatusCode::kIoError);
  // Fresh store (the "reopen after crash" view): 0 readable rows.
  TensorStore reopened(dir_.string(), &stats);
  EXPECT_EQ(reopened.NumRows("f"), 0);
  EXPECT_EQ(reopened.Get("f").status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Legacy v1 compatibility
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, LegacyV1ShardsReadableAndUpgradedOnAppend) {
  IoStats stats;
  Tensor value(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  {
    TensorStore store(dir_.string(), &stats);
    ASSERT_TRUE(store.Put("legacy", value).ok());
  }
  // Strip the footer: the file is now byte-identical to a v1 shard.
  const fs::path shard = FindShard(dir_);
  ASSERT_FALSE(shard.empty());
  const int64_t v1_size =
      static_cast<int64_t>(fs::file_size(shard)) - kShardFooterBytes;
  fs::resize_file(shard, static_cast<uintmax_t>(v1_size));

  TensorStore store(dir_.string(), &stats);
  EXPECT_EQ(store.NumRows("legacy"), 3);
  auto loaded = store.Get("legacy");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Tensor::MaxAbsDiff(*loaded, value), 0.0f);
  auto rows = store.GetRows("legacy", 1, 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_FLOAT_EQ(rows->at(0), 3.0f);

  // Scrub accepts it as legacy, without quarantining.
  ScrubReport report = store.Scrub();
  EXPECT_EQ(report.checked, 1);
  EXPECT_EQ(report.legacy, 1);
  EXPECT_EQ(report.quarantined, 0);

  // Appending upgrades in place: footer materializes, checksums now cover
  // the whole payload.
  ASSERT_TRUE(store.AppendRows("legacy", Tensor(Shape({1, 2}), {7, 8})).ok());
  EXPECT_EQ(static_cast<int64_t>(fs::file_size(FindShard(dir_))),
            v1_size + 2 * static_cast<int64_t>(sizeof(float)) +
                kShardFooterBytes);
  report = store.Scrub();
  EXPECT_EQ(report.ok, 1);
  EXPECT_EQ(report.legacy, 0);
  auto upgraded = store.Get("legacy");
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->shape(), Shape({4, 2}));
  EXPECT_FLOAT_EQ(upgraded->at(7), 8.0f);
}

// ---------------------------------------------------------------------------
// Scrub
// ---------------------------------------------------------------------------

TEST_F(IntegrityTest, ScrubQuarantinesCorruptShardsAndSweepsTmp) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Rng rng(5);
  ASSERT_TRUE(store.Put("good", Tensor::Randn(Shape({16, 8}), &rng, 1.0f))
                  .ok());
  ASSERT_TRUE(store.Put("bad", Tensor::Randn(Shape({16, 8}), &rng, 1.0f))
                  .ok());
  const fs::path bad = FindShard(dir_, "bad");
  ASSERT_FALSE(bad.empty());
  FlipByte(bad, static_cast<int64_t>(fs::file_size(bad)) / 2);
  // Stale temp debris from a crashed writer.
  { std::ofstream(dir_ / "stale.tns.tmp") << "junk"; }

  ScrubReport report = store.Scrub();
  EXPECT_EQ(report.checked, 2);
  EXPECT_EQ(report.ok, 1);
  EXPECT_EQ(report.quarantined, 1);
  ASSERT_EQ(report.quarantined_keys.size(), 1u);
  EXPECT_EQ(report.quarantined_keys[0], "bad");

  // The quarantined key reads as absent; the good one still verifies.
  EXPECT_FALSE(store.Contains("bad"));
  EXPECT_EQ(store.Get("bad").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.NumRows("bad"), 0);
  EXPECT_TRUE(store.Get("good").ok());
  EXPECT_FALSE(fs::exists(dir_ / "stale.tns.tmp"));
  // Evidence file kept beside the store.
  bool found_quarantined = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".quarantined") found_quarantined = true;
  }
  EXPECT_TRUE(found_quarantined);
  // A second scrub is clean.
  report = store.Scrub();
  EXPECT_EQ(report.checked, 1);
  EXPECT_EQ(report.quarantined, 0);
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

graph::ModelGraph CheckpointModel(const zoo::BertLikeModel& source,
                                  const std::string& prefix, uint64_t seed) {
  return zoo::BuildBertFeatureTransferModel(
      source, zoo::BertFeature::kLastHidden, 3, prefix, seed);
}

std::vector<nn::Parameter*> TrainableParams(const graph::ModelGraph& model) {
  std::vector<nn::Parameter*> params;
  for (const graph::GraphNode& node : model.nodes()) {
    if (node.frozen) continue;
    for (nn::Parameter* p : node.layer->Params()) params.push_back(p);
  }
  return params;
}

TEST_F(IntegrityTest, CheckpointSaveIsAtomicTempPlusRename) {
  IoStats stats;
  CheckpointStore store(dir_.string(), &stats);
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 11);
  graph::ModelGraph model = CheckpointModel(source, "ck", 100);
  model.Validate();
  ASSERT_TRUE(store.SaveModel(model, "m", /*include_frozen=*/false).ok());
  const int64_t good_size = store.SizeBytes("m");
  ASSERT_GT(good_size, 0);
  // A save that dies before its rename must leave the previous checkpoint
  // untouched under the live name (only a .tmp differs).
  FaultInjector::Global().Arm(FaultInjector::Kind::kTruncate, 1);
  ASSERT_TRUE(store.SaveModel(model, "m2", /*include_frozen=*/false).ok());
  EXPECT_EQ(store.SizeBytes("m"), good_size);
  ASSERT_TRUE(store.LoadModel(model, "m").ok());
}

TEST_F(IntegrityTest, CorruptCheckpointNeverPartiallyApplies) {
  IoStats stats;
  CheckpointStore store(dir_.string(), &stats);
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 12);
  graph::ModelGraph model = CheckpointModel(source, "cp", 200);
  model.Validate();
  ASSERT_TRUE(store.SaveModel(model, "m", /*include_frozen=*/false).ok());

  // Corrupt one byte in the middle of the checkpoint.
  fs::path ckpt;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".ckpt") ckpt = entry.path();
  }
  ASSERT_FALSE(ckpt.empty());
  FlipByte(ckpt, static_cast<int64_t>(fs::file_size(ckpt)) / 2);

  // Poison every trainable parameter with a sentinel, then attempt the load:
  // it must fail AND leave every sentinel in place (no partial overwrite).
  std::vector<nn::Parameter*> params = TrainableParams(model);
  ASSERT_FALSE(params.empty());
  for (nn::Parameter* p : params) {
    for (int64_t i = 0; i < p->value.NumElements(); ++i) {
      p->value.at(i) = 123.0f;
    }
  }
  const Status loaded = store.LoadModel(model, "m");
  EXPECT_EQ(loaded.code(), StatusCode::kIoError);
  for (nn::Parameter* p : params) {
    for (int64_t i = 0; i < p->value.NumElements(); ++i) {
      ASSERT_EQ(p->value.at(i), 123.0f) << "param " << p->name
                                        << " partially applied";
    }
  }
}

TEST_F(IntegrityTest, TruncatedCheckpointRejected) {
  IoStats stats;
  CheckpointStore store(dir_.string(), &stats);
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 13);
  graph::ModelGraph model = CheckpointModel(source, "tc", 300);
  model.Validate();
  ASSERT_TRUE(store.SaveModel(model, "m", /*include_frozen=*/false).ok());
  FaultInjector::Global().Arm(FaultInjector::Kind::kTruncate, 1);
  ASSERT_TRUE(store.SaveModel(model, "m", /*include_frozen=*/false).ok());
  EXPECT_EQ(store.LoadModel(model, "m").code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// End-to-end recompute fallback
// ---------------------------------------------------------------------------

core::SystemConfig RecoveryConfig() {
  core::SystemConfig config;
  config.expected_max_records = 400;
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 2ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  return config;
}

core::Workload RecoveryWorkload(const zoo::BertLikeModel& source) {
  core::Workload workload;
  core::Hyperparams hp;
  hp.batch_size = 10;
  hp.learning_rate = 1e-3;
  hp.epochs = 2;
  workload.emplace_back(zoo::BuildBertFeatureTransferModel(
                            source, zoo::BertFeature::kLastHidden, 3,
                            "rc_m0", 600),
                        hp);
  hp.learning_rate = 5e-4;
  workload.emplace_back(zoo::BuildBertFeatureTransferModel(
                            source, zoo::BertFeature::kSumLast4, 3,
                            "rc_m1", 601),
                        hp);
  return workload;
}

// A materialized feed corrupted between cycles is detected, recomputed from
// the frozen prefix, and the run converges to results bitwise-identical to
// an uncorrupted run.
TEST_F(IntegrityTest, CorruptFeedRecomputedTransparently) {
  const fs::path dir_clean = dir_ / "clean";
  const fs::path dir_hurt = dir_ / "hurt";
  core::ModelSelectionOptions options;
  options.seed = 99;
  options.materialization = core::MaterializationMode::kAll;
  const core::SystemConfig config = RecoveryConfig();

  zoo::BertLikeModel pool_source(zoo::BertConfig::TinyScale(), 31);
  data::LabeledDataset pool = data::GenerateTextPool(pool_source, 120, 3, 41);
  data::LabelingSimulator sim_clean(pool, 60, 0.75);
  data::LabelingSimulator sim_hurt(pool, 60, 0.75);

  zoo::BertLikeModel source_a(zoo::BertConfig::TinyScale(), 7);
  core::ModelSelection clean(RecoveryWorkload(source_a), config,
                             dir_clean.string(), options);
  auto batch = sim_clean.NextCycle();
  clean.Fit(batch.train, batch.valid);
  batch = sim_clean.NextCycle();
  const core::FitResult clean_final = clean.Fit(batch.train, batch.valid);

  zoo::BertLikeModel source_b(zoo::BertConfig::TinyScale(), 7);
  core::ModelSelection hurt(RecoveryWorkload(source_b), config,
                            dir_hurt.string(), options);
  batch = sim_hurt.NextCycle();
  hurt.Fit(batch.train, batch.valid);
  // Flip a payload bit in one materialized train feed between cycles.
  const fs::path victim = FindShard(dir_hurt / "features", ".train");
  ASSERT_FALSE(victim.empty());
  FlipByte(victim, static_cast<int64_t>(fs::file_size(victim)) / 2);
  const int64_t fallbacks_before =
      obs::MetricsRegistry::Global()
          .counter("materializer.recompute_fallbacks")
          .value();
  batch = sim_hurt.NextCycle();
  const core::FitResult hurt_final = hurt.Fit(batch.train, batch.valid);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .counter("materializer.recompute_fallbacks")
                .value(),
            fallbacks_before);

  // Bitwise-identical model selection despite the mid-run corruption.
  EXPECT_EQ(hurt_final.best_model, clean_final.best_model);
  EXPECT_EQ(hurt_final.best_accuracy, clean_final.best_accuracy);
  ASSERT_EQ(hurt_final.evals.size(), clean_final.evals.size());
  for (size_t i = 0; i < clean_final.evals.size(); ++i) {
    EXPECT_EQ(hurt_final.evals[i].val_loss, clean_final.evals[i].val_loss);
    EXPECT_EQ(hurt_final.evals[i].val_accuracy,
              clean_final.evals[i].val_accuracy);
  }
}

// Startup scrub of a corrupted store: ModelSelection quarantines the shard
// at construction and reconciliation rebuilds it, so a resumed session
// matches the uninterrupted one.
TEST_F(IntegrityTest, ResumeAfterCorruptionScrubsAndRecovers) {
  const fs::path dir_clean = dir_ / "clean";
  const fs::path dir_crash = dir_ / "crash";
  core::ModelSelectionOptions options;
  options.seed = 55;
  options.materialization = core::MaterializationMode::kAll;
  const core::SystemConfig config = RecoveryConfig();

  zoo::BertLikeModel pool_source(zoo::BertConfig::TinyScale(), 31);
  data::LabeledDataset pool = data::GenerateTextPool(pool_source, 120, 3, 43);
  data::LabelingSimulator sim_clean(pool, 60, 0.75);
  data::LabelingSimulator sim_crash(pool, 60, 0.75);

  // Uninterrupted reference run, two cycles.
  zoo::BertLikeModel source_a(zoo::BertConfig::TinyScale(), 9);
  core::ModelSelection clean(RecoveryWorkload(source_a), config,
                             dir_clean.string(), options);
  auto batch = sim_clean.NextCycle();
  clean.Fit(batch.train, batch.valid);
  batch = sim_clean.NextCycle();
  const core::FitResult clean_final = clean.Fit(batch.train, batch.valid);

  // "Crashed" run: one cycle, session saved, then a feed shard is torn as a
  // crashed append would leave it.
  {
    zoo::BertLikeModel source_b(zoo::BertConfig::TinyScale(), 9);
    core::ModelSelection before(RecoveryWorkload(source_b), config,
                                dir_crash.string(), options);
    batch = sim_crash.NextCycle();
    before.Fit(batch.train, batch.valid);
    ASSERT_TRUE(before.SaveSession().ok());
  }
  const fs::path victim = FindShard(dir_crash / "features", ".train");
  ASSERT_FALSE(victim.empty());
  fs::resize_file(victim, fs::file_size(victim) - 17);

  // Resume: the constructor's scrub quarantines the torn shard and the
  // reconcile pass rebuilds it before training.
  options.resume = true;
  zoo::BertLikeModel source_c(zoo::BertConfig::TinyScale(), 9);
  core::ModelSelection resumed(RecoveryWorkload(source_c), config,
                               dir_crash.string(), options);
  batch = sim_crash.NextCycle();
  const core::FitResult resumed_final = resumed.Fit(batch.train, batch.valid);

  EXPECT_EQ(resumed_final.best_model, clean_final.best_model);
  EXPECT_EQ(resumed_final.best_accuracy, clean_final.best_accuracy);
}

}  // namespace
}  // namespace storage
}  // namespace nautilus
