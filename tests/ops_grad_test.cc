// Finite-difference gradient checks for every backward kernel in
// nautilus/tensor/ops.h. Each test builds a scalar objective (sum of the
// forward output weighted by a fixed random cotangent), computes the analytic
// gradient via the backward kernel, and compares against central differences.
#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

using testing_util::ExpectGradientsClose;

// Weighted sum of all elements; gradient of this w.r.t. the tensor is `w`.
double WeightedSum(const Tensor& t, const Tensor& w) {
  double acc = 0.0;
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    acc += static_cast<double>(t.at(i)) * static_cast<double>(w.at(i));
  }
  return acc;
}

TEST(GradCheck, MatMulInputs) {
  Rng rng(10);
  Tensor a = Tensor::Randn(Shape({3, 4}), &rng, 0.5f);
  Tensor b = Tensor::Randn(Shape({4, 2}), &rng, 0.5f);
  Tensor w = Tensor::Randn(Shape({3, 2}), &rng, 1.0f);
  // d(sum(w*AB))/dA = w B^T ; /dB = A^T w
  Tensor da = ops::MatMulNT(w, b);
  Tensor db = ops::MatMulTN(a, w);
  ExpectGradientsClose(
      [&](const Tensor& x) { return WeightedSum(ops::MatMul(x, b), w); }, a,
      da);
  ExpectGradientsClose(
      [&](const Tensor& x) { return WeightedSum(ops::MatMul(a, x), w); }, b,
      db);
}

TEST(GradCheck, Gelu) {
  Rng rng(11);
  Tensor x = Tensor::Randn(Shape({12}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({12}), &rng, 1.0f);
  Tensor dx = ops::GeluBackward(w, x);
  ExpectGradientsClose(
      [&](const Tensor& p) { return WeightedSum(ops::GeluForward(p), w); }, x,
      dx, 1e-3, 1e-2, 5e-2);
}

TEST(GradCheck, Tanh) {
  Rng rng(12);
  Tensor x = Tensor::Randn(Shape({10}), &rng, 0.8f);
  Tensor w = Tensor::Randn(Shape({10}), &rng, 1.0f);
  Tensor y = ops::TanhForward(x);
  Tensor dx = ops::TanhBackward(w, y);
  ExpectGradientsClose(
      [&](const Tensor& p) { return WeightedSum(ops::TanhForward(p), w); }, x,
      dx, 1e-3);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(13);
  Tensor x = Tensor::Randn(Shape({3, 6}), &rng, 1.0f);
  Tensor gamma = Tensor::Randn(Shape({6}), &rng, 0.3f);
  ops::AxpyInPlace(1.0f, Tensor::Full(Shape({6}), 1.0f), &gamma);
  Tensor beta = Tensor::Randn(Shape({6}), &rng, 0.3f);
  Tensor w = Tensor::Randn(Shape({3, 6}), &rng, 1.0f);
  const float eps = 1e-5f;

  ops::LayerNormCache cache;
  Tensor y = ops::LayerNormForward(x, gamma, beta, eps, &cache);
  (void)y;
  Tensor dx, dgamma, dbeta;
  ops::LayerNormBackward(w, gamma, cache, &dx, &dgamma, &dbeta);

  auto f_x = [&](const Tensor& p) {
    ops::LayerNormCache c;
    return WeightedSum(ops::LayerNormForward(p, gamma, beta, eps, &c), w);
  };
  ExpectGradientsClose(f_x, x, dx, 1e-3, 2e-2, 8e-2);

  auto f_gamma = [&](const Tensor& p) {
    ops::LayerNormCache c;
    return WeightedSum(ops::LayerNormForward(x, p, beta, eps, &c), w);
  };
  ExpectGradientsClose(f_gamma, gamma, dgamma, 1e-3);

  auto f_beta = [&](const Tensor& p) {
    ops::LayerNormCache c;
    return WeightedSum(ops::LayerNormForward(x, gamma, p, eps, &c), w);
  };
  ExpectGradientsClose(f_beta, beta, dbeta, 1e-3);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(14);
  Tensor logits = Tensor::Randn(Shape({4, 3}), &rng, 1.0f);
  std::vector<int32_t> labels = {0, 2, 1, 2};
  Tensor probs = ops::SoftmaxForward(logits);
  Tensor dlogits;
  ops::SoftmaxCrossEntropy(probs, labels, &dlogits);
  auto f = [&](const Tensor& p) {
    Tensor pr = ops::SoftmaxForward(p);
    Tensor unused;
    return static_cast<double>(ops::SoftmaxCrossEntropy(pr, labels, &unused));
  };
  ExpectGradientsClose(f, logits, dlogits, 1e-3);
}

TEST(GradCheck, SoftmaxBackward) {
  Rng rng(21);
  Tensor logits = Tensor::Randn(Shape({4, 5}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({4, 5}), &rng, 1.0f);
  Tensor y = ops::SoftmaxForward(logits);
  Tensor dx = ops::SoftmaxBackward(w, y);
  ExpectGradientsClose(
      [&](const Tensor& p) { return WeightedSum(ops::SoftmaxForward(p), w); },
      logits, dx, 1e-3);
}

TEST(GradCheck, MeanPoolSeq) {
  Rng rng(15);
  Tensor x = Tensor::Randn(Shape({2, 3, 4}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({2, 4}), &rng, 1.0f);
  Tensor y = ops::MeanPoolSeq(x);
  (void)y;
  Tensor dx = ops::MeanPoolSeqBackward(w, x.shape());
  ExpectGradientsClose(
      [&](const Tensor& p) { return WeightedSum(ops::MeanPoolSeq(p), w); }, x,
      dx, 1e-3);
}

TEST(GradCheck, SelectSeqPosition) {
  Rng rng(16);
  Tensor x = Tensor::Randn(Shape({2, 3, 2}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({2, 2}), &rng, 1.0f);
  Tensor dx = ops::SelectSeqPositionBackward(w, x.shape(), -1);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::SelectSeqPosition(p, -1), w);
      },
      x, dx, 1e-3);
}

TEST(GradCheck, Attention) {
  Rng rng(17);
  const Shape qkv({1, 2, 3, 2});  // b=1, heads=2, s=3, dh=2
  Tensor q = Tensor::Randn(qkv, &rng, 0.7f);
  Tensor k = Tensor::Randn(qkv, &rng, 0.7f);
  Tensor v = Tensor::Randn(qkv, &rng, 0.7f);
  Tensor w = Tensor::Randn(qkv, &rng, 1.0f);

  ops::AttentionCache cache;
  Tensor y = ops::AttentionForward(q, k, v, &cache);
  (void)y;
  Tensor dq, dk, dv;
  ops::AttentionBackward(w, q, k, v, cache, &dq, &dk, &dv);

  auto run = [&](const Tensor& qq, const Tensor& kk, const Tensor& vv) {
    ops::AttentionCache c;
    return WeightedSum(ops::AttentionForward(qq, kk, vv, &c), w);
  };
  ExpectGradientsClose([&](const Tensor& p) { return run(p, k, v); }, q, dq,
                       1e-3, 2e-2, 8e-2);
  ExpectGradientsClose([&](const Tensor& p) { return run(q, p, v); }, k, dk,
                       1e-3, 2e-2, 8e-2);
  ExpectGradientsClose([&](const Tensor& p) { return run(q, k, p); }, v, dv,
                       1e-3, 2e-2, 8e-2);
}

TEST(GradCheck, Conv2D) {
  Rng rng(18);
  Tensor x = Tensor::Randn(Shape({1, 2, 4, 4}), &rng, 0.5f);
  Tensor weight = Tensor::Randn(Shape({2, 2, 3, 3}), &rng, 0.3f);
  Tensor bias = Tensor::Randn(Shape({2}), &rng, 0.1f);
  const ops::Conv2DArgs args{.stride = 1, .padding = 1};
  Tensor w = Tensor::Randn(Shape({1, 2, 4, 4}), &rng, 1.0f);

  Tensor dx, dweight, dbias;
  ops::Conv2DBackward(w, x, weight, args, &dx, &dweight, &dbias);

  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::Conv2DForward(p, weight, bias, args), w);
      },
      x, dx, 1e-2, 3e-2, 8e-2);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::Conv2DForward(x, p, bias, args), w);
      },
      weight, dweight, 1e-2, 3e-2, 8e-2);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::Conv2DForward(x, weight, p, args), w);
      },
      bias, dbias, 1e-2, 3e-2, 8e-2);
}

TEST(GradCheck, Conv2DStride2) {
  Rng rng(19);
  Tensor x = Tensor::Randn(Shape({1, 1, 4, 4}), &rng, 0.5f);
  Tensor weight = Tensor::Randn(Shape({1, 1, 3, 3}), &rng, 0.3f);
  Tensor bias(Shape({1}));
  const ops::Conv2DArgs args{.stride = 2, .padding = 1};
  Tensor y = ops::Conv2DForward(x, weight, bias, args);
  Tensor w = Tensor::Randn(y.shape(), &rng, 1.0f);
  Tensor dx, dweight, dbias;
  ops::Conv2DBackward(w, x, weight, args, &dx, &dweight, &dbias);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::Conv2DForward(p, weight, bias, args), w);
      },
      x, dx, 1e-2, 3e-2, 8e-2);
}

TEST(GradCheck, ChannelAffine) {
  Rng rng(20);
  Tensor x = Tensor::Randn(Shape({2, 3, 2, 2}), &rng, 0.5f);
  Tensor scale = Tensor::Randn(Shape({3}), &rng, 0.2f);
  ops::AxpyInPlace(1.0f, Tensor::Full(Shape({3}), 1.0f), &scale);
  Tensor shift = Tensor::Randn(Shape({3}), &rng, 0.2f);
  Tensor w = Tensor::Randn(x.shape(), &rng, 1.0f);
  Tensor dx, dscale, dshift;
  ops::ChannelAffineBackward(w, x, scale, &dx, &dscale, &dshift);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::ChannelAffineForward(p, scale, shift), w);
      },
      x, dx, 1e-3);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::ChannelAffineForward(x, p, shift), w);
      },
      scale, dscale, 1e-3);
  ExpectGradientsClose(
      [&](const Tensor& p) {
        return WeightedSum(ops::ChannelAffineForward(x, scale, p), w);
      },
      shift, dshift, 1e-3);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(21);
  Tensor x = Tensor::Randn(Shape({2, 2, 2, 2}), &rng, 1.0f);
  Tensor w = Tensor::Randn(Shape({2, 2}), &rng, 1.0f);
  Tensor dx = ops::GlobalAvgPoolBackward(w, x.shape());
  ExpectGradientsClose(
      [&](const Tensor& p) { return WeightedSum(ops::GlobalAvgPool(p), w); },
      x, dx, 1e-3);
}

}  // namespace
}  // namespace nautilus
