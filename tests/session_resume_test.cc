// Session persistence: a ModelSelection saved mid-workload and resumed by a
// "new process" (fresh identically-seeded workload objects) must continue
// exactly where the uninterrupted run would be.
#include <filesystem>

#include <gtest/gtest.h>

#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

SystemConfig ResumeConfig() {
  SystemConfig config;
  config.expected_max_records = 400;
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 2ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  return config;
}

Workload ResumeWorkload(const zoo::BertLikeModel& source) {
  Workload workload;
  Hyperparams hp;
  hp.batch_size = 10;
  hp.learning_rate = 1e-3;
  hp.epochs = 2;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          source, zoo::BertFeature::kLastHidden, 3, "rs_m0", 600),
      hp);
  hp.learning_rate = 5e-4;
  workload.emplace_back(
      zoo::BuildBertFeatureTransferModel(
          source, zoo::BertFeature::kSumLast4, 3, "rs_m1", 601),
      hp);
  return workload;
}

TEST(SessionResumeTest, ResumedRunMatchesUninterruptedRun) {
  const auto base =
      std::filesystem::temp_directory_path() / "nautilus_resume";
  std::filesystem::remove_all(base);
  ModelSelectionOptions options;
  options.seed = 77;

  // Shared data stream.
  zoo::BertLikeModel pool_source(zoo::BertConfig::TinyScale(), 31);
  data::LabeledDataset pool =
      data::GenerateTextPool(pool_source, 180, 3, 41);
  data::LabelingSimulator sim_a(pool, 60, 0.75);
  data::LabelingSimulator sim_b(pool, 60, 0.75);

  // Uninterrupted reference: three cycles in one object.
  FitResult reference;
  {
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 31);
    ModelSelection selection(ResumeWorkload(source), ResumeConfig(),
                             (base / "ref").string(), options);
    for (int cycle = 0; cycle < 3; ++cycle) {
      auto batch = sim_a.NextCycle();
      reference = selection.Fit(batch.train, batch.valid);
    }
  }

  // Interrupted run: two cycles, save, destroy, resume, third cycle.
  {
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 31);
    ModelSelection selection(ResumeWorkload(source), ResumeConfig(),
                             (base / "sess").string(), options);
    for (int cycle = 0; cycle < 2; ++cycle) {
      auto batch = sim_b.NextCycle();
      selection.Fit(batch.train, batch.valid);
    }
    ASSERT_TRUE(selection.SaveSession().ok());
  }
  FitResult resumed;
  {
    // "New process": fresh workload objects with the same seeds.
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 31);
    ModelSelectionOptions resume_options = options;
    resume_options.resume = true;
    ModelSelection selection(ResumeWorkload(source), ResumeConfig(),
                             (base / "sess").string(), resume_options);
    EXPECT_EQ(selection.cycles_completed(), 2);
    EXPECT_EQ(selection.dataset().train().size(), 90);
    auto batch = sim_b.NextCycle();
    resumed = selection.Fit(batch.train, batch.valid);
  }
  std::filesystem::remove_all(base);

  ASSERT_EQ(resumed.evals.size(), reference.evals.size());
  EXPECT_EQ(resumed.cycle, reference.cycle);
  for (size_t m = 0; m < resumed.evals.size(); ++m) {
    EXPECT_NEAR(resumed.evals[m].val_accuracy,
                reference.evals[m].val_accuracy, 1e-5)
        << "model " << m;
    EXPECT_NEAR(resumed.evals[m].val_loss, reference.evals[m].val_loss,
                1e-4);
  }
  EXPECT_EQ(resumed.best_model, reference.best_model);
}

TEST(SessionResumeTest, ResumeWithoutManifestDies) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_resume_missing";
  std::filesystem::remove_all(dir);
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 32);
  ModelSelectionOptions options;
  options.resume = true;
  EXPECT_DEATH(ModelSelection(ResumeWorkload(source), ResumeConfig(),
                              dir.string(), options),
               "no session manifest");
  std::filesystem::remove_all(dir);
}

TEST(SessionResumeTest, StaleFeatureKeysGarbageCollected) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_resume_gc";
  std::filesystem::remove_all(dir);
  ModelSelectionOptions options;
  {
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 33);
    ModelSelection selection(ResumeWorkload(source), ResumeConfig(),
                             dir.string(), options);
    data::LabeledDataset pool = data::GenerateTextPool(source, 60, 3, 42);
    selection.Fit(pool.Slice(0, 45), pool.Slice(45, 60));
    ASSERT_TRUE(selection.SaveSession().ok());
  }
  {
    zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 33);
    ModelSelectionOptions resume_options;
    resume_options.resume = true;
    ModelSelection selection(ResumeWorkload(source), ResumeConfig(),
                             dir.string(), resume_options);
    // Every surviving feature key must belong to the new process's units or
    // the session snapshot.
    const auto& mm = selection.multi_model();
    std::set<std::string> live = {"session.train.inputs",
                                  "session.train.labels",
                                  "session.valid.inputs",
                                  "session.valid.labels"};
    for (const auto& unit : mm.units()) {
      live.insert(unit.key + ".train");
      live.insert(unit.key + ".valid");
    }
    storage::IoStats stats;
    storage::TensorStore store(dir.string() + "/features", &stats);
    for (const std::string& key : store.ListKeys()) {
      EXPECT_TRUE(live.count(key) > 0) << "stale key " << key;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
