#include <gtest/gtest.h>

#include "nautilus/tensor/ops.h"
#include "nautilus/tensor/tensor.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

TEST(ShapeTest, Basics) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.ElementsPerRecord(), 12);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(s.WithBatch(5).dim(0), 5);
  EXPECT_EQ(s.WithBatch(5).dim(1), 3);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape({2, 2}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full(Shape({3}), 2.5f);
  EXPECT_EQ(t.at(2), 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.at(0), -1.0f);
}

TEST(TensorTest, RandnDeterministic) {
  Rng a(5), b(5);
  Tensor t1 = Tensor::Randn(Shape({10}), &a, 0.1f);
  Tensor t2 = Tensor::Randn(Shape({10}), &b, 0.1f);
  EXPECT_EQ(Tensor::MaxAbsDiff(t1, t2), 0.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t(Shape({2, 6}), std::vector<float>(12, 1.0f));
  Tensor r = t.Reshaped(Shape({3, 4}));
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r.at(11), 1.0f);
}

TEST(TensorTest, SliceRows) {
  Tensor t(Shape({4, 2}), {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor s = t.SliceRows(1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.at(0), 2.0f);
  EXPECT_EQ(s.at(3), 5.0f);
}

TEST(TensorTest, GatherRows) {
  Tensor t(Shape({3, 2}), {0, 1, 2, 3, 4, 5});
  Tensor g = t.GatherRows({2, 0});
  EXPECT_EQ(g.shape(), Shape({2, 2}));
  EXPECT_EQ(g.at(0), 4.0f);
  EXPECT_EQ(g.at(2), 0.0f);
}

TEST(TensorTest, AppendRows) {
  Tensor a(Shape({2, 2}), {1, 2, 3, 4});
  Tensor b(Shape({1, 2}), {5, 6});
  a.AppendRows(b);
  EXPECT_EQ(a.shape(), Shape({3, 2}));
  EXPECT_EQ(a.at(5), 6.0f);
}

TEST(TensorTest, AppendRowsToEmpty) {
  Tensor a;
  Tensor b(Shape({1, 2}), {5, 6});
  a.AppendRows(b);
  EXPECT_EQ(a.shape(), Shape({1, 2}));
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a(Shape({2}), {1.0f, 2.0f});
  Tensor b(Shape({2}), {1.5f, 1.0f});
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 1.0f);
}

TEST(TensorTest, SizeBytes) {
  Tensor t(Shape({3, 4}));
  EXPECT_EQ(t.SizeBytes(), 48);
}

TEST(TensorTest, FromBorrowedReadsInPlace) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor view = Tensor::FromBorrowed(backing->data(), Shape({2, 3}), backing);
  const Tensor& cview = view;  // non-const data()/at() would detach
  EXPECT_TRUE(view.IsView());
  EXPECT_EQ(cview.data(), backing->data());  // const access: zero-copy
  EXPECT_FLOAT_EQ(cview.at(4), 5.0f);
  Tensor slice = view.SliceRows(1, 2);
  EXPECT_FLOAT_EQ(slice.at(2), 6.0f);
}

TEST(TensorTest, BorrowedTensorDetachesOnMutation) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1, 2, 3, 4});
  Tensor view = Tensor::FromBorrowed(backing->data(), Shape({4}), backing);
  Tensor copy = view;  // copies share the borrowed storage
  view.at(0) = 99.0f;  // mutating access detaches
  EXPECT_FALSE(view.IsView());
  EXPECT_TRUE(copy.IsView());
  EXPECT_FLOAT_EQ((*backing)[0], 1.0f);  // backing untouched
  EXPECT_FLOAT_EQ(copy.at(0), 1.0f);
  EXPECT_FLOAT_EQ(view.at(0), 99.0f);
}

TEST(TensorTest, BorrowedHolderKeepsBackingAlive) {
  Tensor view;
  {
    auto backing = std::make_shared<std::vector<float>>(
        std::vector<float>{7, 8});
    view = Tensor::FromBorrowed(backing->data(), Shape({2}), backing);
  }  // the only named reference dies; the holder keeps the bytes alive
  EXPECT_FLOAT_EQ(view.at(0), 7.0f);
  EXPECT_FLOAT_EQ(view.at(1), 8.0f);
}

TEST(TensorTest, BorrowedAppendRowsDetaches) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1, 2});
  Tensor view = Tensor::FromBorrowed(backing->data(), Shape({1, 2}), backing);
  view.AppendRows(Tensor(Shape({1, 2}), {3, 4}));
  EXPECT_FALSE(view.IsView());
  EXPECT_EQ(view.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(view.at(3), 4.0f);
  EXPECT_EQ(backing->size(), 2u);  // backing untouched
}

TEST(OpsTest, MatMulSmall) {
  Tensor a(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.at(0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(2), 139.0f);
  EXPECT_FLOAT_EQ(c.at(3), 154.0f);
}

TEST(OpsTest, MatMulNTMatchesExplicitTranspose) {
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({3, 4}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({5, 4}), &rng, 1.0f);
  // b_t = transpose(b)
  Tensor bt(Shape({4, 5}));
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) bt.at(j * 5 + i) = b.at(i * 4 + j);
  }
  Tensor c1 = ops::MatMulNT(a, b);
  Tensor c2 = ops::MatMul(a, bt);
  EXPECT_LT(Tensor::MaxAbsDiff(c1, c2), 1e-5f);
}

TEST(OpsTest, MatMulTNMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::Randn(Shape({4, 3}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({4, 5}), &rng, 1.0f);
  Tensor at(Shape({3, 4}));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) at.at(j * 4 + i) = a.at(i * 3 + j);
  }
  Tensor c1 = ops::MatMulTN(a, b);
  Tensor c2 = ops::MatMul(at, b);
  EXPECT_LT(Tensor::MaxAbsDiff(c1, c2), 1e-5f);
}

TEST(OpsTest, AddBiasAndColumnSum) {
  Tensor x(Shape({2, 3}), {0, 0, 0, 1, 1, 1});
  Tensor bias(Shape({3}), {1, 2, 3});
  ops::AddBiasInPlace(&x, bias);
  EXPECT_FLOAT_EQ(x.at(0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(5), 4.0f);
  Tensor cs = ops::ColumnSum(x);
  EXPECT_FLOAT_EQ(cs.at(0), 3.0f);
  EXPECT_FLOAT_EQ(cs.at(2), 7.0f);
}

TEST(OpsTest, AddAndAddN) {
  Tensor a(Shape({2}), {1, 2});
  Tensor b(Shape({2}), {10, 20});
  Tensor c(Shape({2}), {100, 200});
  Tensor s = ops::AddN({&a, &b, &c});
  EXPECT_FLOAT_EQ(s.at(0), 111.0f);
  EXPECT_FLOAT_EQ(s.at(1), 222.0f);
  Tensor d = ops::Add(a, b);
  EXPECT_FLOAT_EQ(d.at(1), 22.0f);
}

TEST(OpsTest, ReluForwardBackward) {
  Tensor x(Shape({4}), {-1, 0, 2, -3});
  Tensor y = ops::ReluForward(x);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 2.0f);
  Tensor dy = Tensor::Full(Shape({4}), 1.0f);
  Tensor dx = ops::ReluBackward(dy, y);
  EXPECT_FLOAT_EQ(dx.at(0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(2), 1.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor logits = Tensor::Randn(Shape({5, 7}), &rng, 2.0f);
  Tensor p = ops::SoftmaxForward(logits);
  for (int64_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 7; ++j) sum += p.at(i * 7 + j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxCrossEntropyPerfectPrediction) {
  Tensor logits(Shape({1, 2}), {100.0f, -100.0f});
  Tensor p = ops::SoftmaxForward(logits);
  Tensor dlogits;
  float loss = ops::SoftmaxCrossEntropy(p, {0}, &dlogits);
  EXPECT_NEAR(loss, 0.0f, 1e-5f);
}

TEST(OpsTest, AccuracyCounts) {
  Tensor probs(Shape({3, 2}), {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_FLOAT_EQ(ops::Accuracy(probs, {0, 1, 1}), 2.0f / 3.0f);
}

TEST(OpsTest, EmbeddingForwardGathersRows) {
  Tensor table(Shape({3, 2}), {0, 1, 10, 11, 20, 21});
  Tensor ids(Shape({1, 2}), {2, 0});
  Tensor out = ops::EmbeddingForward(ids, table);
  EXPECT_EQ(out.shape(), Shape({1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 20.0f);
  EXPECT_FLOAT_EQ(out.at(2), 0.0f);
}

TEST(OpsTest, EmbeddingBackwardScatters) {
  Tensor ids(Shape({1, 2}), {1, 1});
  Tensor dy(Shape({1, 2, 2}), {1, 2, 3, 4});
  Tensor dtable(Shape({3, 2}));
  ops::EmbeddingBackward(ids, dy, &dtable);
  EXPECT_FLOAT_EQ(dtable.at(2), 4.0f);  // row 1 col 0: 1 + 3
  EXPECT_FLOAT_EQ(dtable.at(3), 6.0f);  // row 1 col 1: 2 + 4
  EXPECT_FLOAT_EQ(dtable.at(0), 0.0f);
}

TEST(OpsTest, MeanPoolSeq) {
  Tensor x(Shape({1, 2, 2}), {1, 2, 3, 4});
  Tensor y = ops::MeanPoolSeq(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1), 3.0f);
}

TEST(OpsTest, SelectSeqPosition) {
  Tensor x(Shape({1, 3, 2}), {1, 2, 3, 4, 5, 6});
  Tensor y = ops::SelectSeqPosition(x, 1);
  EXPECT_FLOAT_EQ(y.at(0), 3.0f);
  Tensor last = ops::SelectSeqPosition(x, -1);
  EXPECT_FLOAT_EQ(last.at(0), 5.0f);
}

TEST(OpsTest, ConcatSplitRoundTrip) {
  Tensor a(Shape({2, 1}), {1, 2});
  Tensor b(Shape({2, 2}), {3, 4, 5, 6});
  Tensor c = ops::ConcatLastDim({&a, &b});
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(c.at(0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(1), 3.0f);
  EXPECT_FLOAT_EQ(c.at(4), 5.0f);
  std::vector<Tensor> parts = ops::SplitLastDim(c, {1, 2});
  EXPECT_LT(Tensor::MaxAbsDiff(parts[0], a), 1e-6f);
  EXPECT_LT(Tensor::MaxAbsDiff(parts[1], b), 1e-6f);
}

TEST(OpsTest, SplitMergeHeadsRoundTrip) {
  Rng rng(4);
  Tensor x = Tensor::Randn(Shape({2, 3, 8}), &rng, 1.0f);
  Tensor split = ops::SplitHeads(x, 4);
  EXPECT_EQ(split.shape(), Shape({2, 4, 3, 2}));
  Tensor merged = ops::MergeHeads(split);
  EXPECT_LT(Tensor::MaxAbsDiff(x, merged), 1e-6f);
}

TEST(OpsTest, MaxPoolForwardBackward) {
  Tensor x(Shape({1, 1, 2, 2}), {1, 5, 3, 2});
  ops::MaxPoolCache cache;
  Tensor y = ops::MaxPool2DForward(x, 2, &cache);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 5.0f);
  Tensor dy(Shape({1, 1, 1, 1}), {2.0f});
  Tensor dx = ops::MaxPool2DBackward(dy, x.shape(), cache);
  EXPECT_FLOAT_EQ(dx.at(1), 2.0f);
  EXPECT_FLOAT_EQ(dx.at(0), 0.0f);
}

TEST(OpsTest, GlobalAvgPool) {
  Tensor x(Shape({1, 2, 1, 2}), {1, 3, 10, 20});
  Tensor y = ops::GlobalAvgPool(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1), 15.0f);
}

TEST(OpsTest, Conv2DIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor x(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  Tensor w(Shape({1, 1, 1, 1}), {1.0f});
  Tensor bias(Shape({1}), {0.0f});
  Tensor y = ops::Conv2DForward(x, w, bias, {.stride = 1, .padding = 0});
  EXPECT_LT(Tensor::MaxAbsDiff(x, y), 1e-6f);
}

TEST(OpsTest, Conv2DKnownResult) {
  // 3x3 input, 2x2 kernel of ones, no padding -> 2x2 output of window sums.
  Tensor x(Shape({1, 1, 3, 3}), {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w(Shape({1, 1, 2, 2}), {1, 1, 1, 1});
  Tensor bias(Shape({1}), {0.5f});
  Tensor y = ops::Conv2DForward(x, w, bias, {.stride = 1, .padding = 0});
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 12.5f);
  EXPECT_FLOAT_EQ(y.at(3), 28.5f);
}

TEST(OpsTest, Conv2DStridePadding) {
  Tensor x(Shape({1, 1, 4, 4}), std::vector<float>(16, 1.0f));
  Tensor w(Shape({1, 1, 3, 3}), std::vector<float>(9, 1.0f));
  Tensor bias(Shape({1}), {0.0f});
  Tensor y = ops::Conv2DForward(x, w, bias, {.stride = 2, .padding = 1});
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  // Top-left window covers 2x2 of the input (padded corners).
  EXPECT_FLOAT_EQ(y.at(0), 4.0f);
}

TEST(OpsTest, ChannelAffine) {
  Tensor x(Shape({1, 2, 1, 1}), {2, 3});
  Tensor scale(Shape({2}), {10, 100});
  Tensor shift(Shape({2}), {1, -1});
  Tensor y = ops::ChannelAffineForward(x, scale, shift);
  EXPECT_FLOAT_EQ(y.at(0), 21.0f);
  EXPECT_FLOAT_EQ(y.at(1), 299.0f);
}

}  // namespace
}  // namespace nautilus
