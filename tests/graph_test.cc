#include <gtest/gtest.h>

#include "nautilus/graph/executor.h"
#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/basic.h"
#include "nautilus/nn/combine.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace graph {
namespace {

// Builds: input -> dense_a (frozen?) -> dense_b -> output, configurable.
struct ChainParts {
  std::shared_ptr<nn::InputLayer> input;
  std::shared_ptr<nn::DenseLayer> a;
  std::shared_ptr<nn::DenseLayer> b;
};

ChainParts MakeChainParts(Rng* rng) {
  ChainParts p;
  p.input = std::make_shared<nn::InputLayer>("x", Shape({4}));
  p.a = std::make_shared<nn::DenseLayer>("a", 4, 4, nn::Activation::kRelu,
                                         rng);
  p.b = std::make_shared<nn::DenseLayer>("b", 4, 2, nn::Activation::kNone,
                                         rng);
  return p;
}

TEST(ModelGraphTest, BasicConstruction) {
  Rng rng(1);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  int in = g.AddInput(p.input);
  int a = g.AddNode(p.a, {in}, true);
  int b = g.AddNode(p.b, {a}, false);
  g.MarkOutput(b);
  g.Validate();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_TRUE(g.IsInput(in));
  EXPECT_TRUE(g.IsOutput(b));
  EXPECT_FALSE(g.IsOutput(a));
}

TEST(ModelGraphTest, MaterializableMaskChain) {
  Rng rng(2);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  int in = g.AddInput(p.input);
  int a = g.AddNode(p.a, {in}, /*frozen=*/true);
  int b = g.AddNode(p.b, {a}, /*frozen=*/false);
  g.MarkOutput(b);
  auto mask = g.MaterializableMask();
  EXPECT_TRUE(mask[static_cast<size_t>(in)]);
  EXPECT_TRUE(mask[static_cast<size_t>(a)]);
  EXPECT_FALSE(mask[static_cast<size_t>(b)]);
}

TEST(ModelGraphTest, FrozenLayerWithTrainableAncestorNotMaterializable) {
  // Definition 2.4: frozen layer below a trainable one is not materializable
  // (its input changes every step).
  Rng rng(3);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({4}));
  auto t = std::make_shared<nn::DenseLayer>("t", 4, 4, nn::Activation::kNone,
                                            &rng);
  auto f = std::make_shared<nn::DenseLayer>("f", 4, 4, nn::Activation::kNone,
                                            &rng);
  ModelGraph g("m");
  int in = g.AddInput(input);
  int tid = g.AddNode(t, {in}, /*frozen=*/false);
  int fid = g.AddNode(f, {tid}, /*frozen=*/true);
  g.MarkOutput(fid);
  auto mask = g.MaterializableMask();
  EXPECT_TRUE(mask[static_cast<size_t>(in)]);
  EXPECT_FALSE(mask[static_cast<size_t>(tid)]);
  EXPECT_FALSE(mask[static_cast<size_t>(fid)]);
}

TEST(ModelGraphTest, ParameterFreeLayersAreFrozen) {
  Rng rng(4);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({2, 4}));
  ModelGraph g("m");
  int in = g.AddInput(input);
  // Request frozen=false; parameter-free Add must still be frozen.
  int add = g.AddNode(std::make_shared<nn::AddLayer>("add"), {in, in},
                      /*frozen=*/false);
  g.MarkOutput(add);
  EXPECT_TRUE(g.node(add).frozen);
}

TEST(ModelGraphTest, ExpressionHashesSharedVsCloned) {
  Rng rng(5);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({4}));
  auto shared_dense =
      std::make_shared<nn::DenseLayer>("d", 4, 4, nn::Activation::kNone, &rng);

  ModelGraph g1("m1");
  int in1 = g1.AddInput(input);
  int d1 = g1.AddNode(shared_dense, {in1}, true);
  g1.MarkOutput(d1);

  ModelGraph g2("m2");
  int in2 = g2.AddInput(input);
  int d2 = g2.AddNode(shared_dense, {in2}, true);
  g2.MarkOutput(d2);

  ModelGraph g3("m3");
  int in3 = g3.AddInput(input);
  int d3 = g3.AddNode(shared_dense->Clone(), {in3}, true);
  g3.MarkOutput(d3);

  auto h1 = g1.ExpressionHashes();
  auto h2 = g2.ExpressionHashes();
  auto h3 = g3.ExpressionHashes();
  // Same shared instance on the same input -> identical expressions.
  EXPECT_EQ(h1[static_cast<size_t>(d1)], h2[static_cast<size_t>(d2)]);
  // A clone has a fresh UID -> different expression.
  EXPECT_NE(h1[static_cast<size_t>(d1)], h3[static_cast<size_t>(d3)]);
}

TEST(ModelGraphTest, ExpressionHashDependsOnParents) {
  Rng rng(6);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({4}));
  auto a = std::make_shared<nn::DenseLayer>("a", 4, 4, nn::Activation::kNone,
                                            &rng);
  auto b = std::make_shared<nn::DenseLayer>("b", 4, 4, nn::Activation::kNone,
                                            &rng);

  // b(input) vs b(a(input)) must hash differently.
  ModelGraph g1("m1");
  int in1 = g1.AddInput(input);
  int b1 = g1.AddNode(b, {in1}, true);
  g1.MarkOutput(b1);

  ModelGraph g2("m2");
  int in2 = g2.AddInput(input);
  int a2 = g2.AddNode(a, {in2}, true);
  int b2 = g2.AddNode(b, {a2}, true);
  g2.MarkOutput(b2);

  EXPECT_NE(g1.ExpressionHashes()[static_cast<size_t>(b1)],
            g2.ExpressionHashes()[static_cast<size_t>(b2)]);
}

TEST(ModelGraphTest, NodeShapesThroughChain) {
  Rng rng(7);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  int in = g.AddInput(p.input);
  int a = g.AddNode(p.a, {in}, true);
  int b = g.AddNode(p.b, {a}, false);
  g.MarkOutput(b);
  auto shapes = g.NodeShapes(8);
  EXPECT_EQ(shapes[static_cast<size_t>(in)], Shape({8, 4}));
  EXPECT_EQ(shapes[static_cast<size_t>(a)], Shape({8, 4}));
  EXPECT_EQ(shapes[static_cast<size_t>(b)], Shape({8, 2}));
}

TEST(ModelGraphTest, ChildLists) {
  Rng rng(8);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({2, 4}));
  ModelGraph g("m");
  int in = g.AddInput(input);
  int add = g.AddNode(std::make_shared<nn::AddLayer>("add"), {in, in}, true);
  g.MarkOutput(add);
  auto children = g.ChildLists();
  ASSERT_EQ(children[static_cast<size_t>(in)].size(), 2u);
  EXPECT_EQ(children[static_cast<size_t>(in)][0], add);
}

TEST(ModelGraphTest, TrainableParamCount) {
  Rng rng(9);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  int in = g.AddInput(p.input);
  int a = g.AddNode(p.a, {in}, /*frozen=*/true);
  int b = g.AddNode(p.b, {a}, /*frozen=*/false);
  g.MarkOutput(b);
  EXPECT_EQ(g.TrainableParamCount(), 4 * 2 + 2);
  EXPECT_EQ(g.TotalParamCount(), (4 * 4 + 4) + (4 * 2 + 2));
}

TEST(ExecutorTest, ForwardMatchesManualComputation) {
  Rng rng(10);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({3}));
  auto dense = std::make_shared<nn::DenseLayer>(
      "d", 3, 2, nn::Activation::kNone, &rng);
  ModelGraph g("m");
  int in = g.AddInput(input);
  int d = g.AddNode(dense, {in}, false);
  g.MarkOutput(d);

  Tensor x(Shape({1, 3}), {1.0f, 2.0f, 3.0f});
  Executor ex(&g);
  ex.Forward({{in, x}}, /*training=*/false);
  const Tensor& y = ex.Output(d);
  // Manual: y = x W + b.
  std::unique_ptr<nn::LayerCache> cache;
  Tensor expected = dense->Forward({&x}, &cache);
  EXPECT_LT(Tensor::MaxAbsDiff(y, expected), 1e-6f);
}

TEST(ExecutorTest, BackwardAccumulatesOnlyTrainableParams) {
  Rng rng(11);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  int in = g.AddInput(p.input);
  int a = g.AddNode(p.a, {in}, /*frozen=*/true);
  int b = g.AddNode(p.b, {a}, /*frozen=*/false);
  g.MarkOutput(b);

  Executor ex(&g);
  ex.ZeroGrads();
  Tensor x = Tensor::Randn(Shape({4, 4}), &rng, 1.0f);
  ex.Forward({{in, x}}, /*training=*/true);
  Tensor gout = Tensor::Full(Shape({4, 2}), 1.0f);
  ex.Backward({{b, gout}});

  // Trainable layer must have nonzero gradient.
  float b_grad_norm = 0.0f;
  for (nn::Parameter* param : p.b->Params()) {
    for (int64_t i = 0; i < param->grad.NumElements(); ++i) {
      b_grad_norm += std::abs(param->grad.at(i));
    }
  }
  EXPECT_GT(b_grad_norm, 0.0f);

  // Frozen layer's gradients remain untouched (never even computed).
  for (nn::Parameter* param : p.a->Params()) {
    for (int64_t i = 0; i < param->grad.NumElements(); ++i) {
      EXPECT_EQ(param->grad.at(i), 0.0f);
    }
  }
}

TEST(ExecutorTest, TrainingStepReducesLoss) {
  // Tiny regression-style sanity: a dense stack trained with SGD fits random
  // labels better after a few steps.
  Rng rng(12);
  auto input = std::make_shared<nn::InputLayer>("x", Shape({4}));
  auto h = std::make_shared<nn::DenseLayer>("h", 4, 8, nn::Activation::kRelu,
                                            &rng);
  auto out = std::make_shared<nn::DenseLayer>(
      "out", 8, 2, nn::Activation::kNone, &rng);
  ModelGraph g("m");
  int in = g.AddInput(input);
  int hid = g.AddNode(h, {in}, false);
  int logits = g.AddNode(out, {hid}, false);
  g.MarkOutput(logits);

  Tensor x = Tensor::Randn(Shape({16, 4}), &rng, 1.0f);
  std::vector<int32_t> labels;
  for (int i = 0; i < 16; ++i) {
    labels.push_back(x.at(i * 4) > 0 ? 1 : 0);
  }

  Executor ex(&g);
  auto params = ex.TrainableParams();
  float first_loss = -1.0f;
  float last_loss = -1.0f;
  for (int step = 0; step < 60; ++step) {
    ex.ZeroGrads();
    ex.Forward({{in, x}}, true);
    Tensor probs = ops::SoftmaxForward(ex.Output(logits));
    Tensor dlogits;
    float loss = ops::SoftmaxCrossEntropy(probs, labels, &dlogits);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    ex.Backward({{logits, dlogits}});
    for (nn::Parameter* param : params) {
      for (int64_t i = 0; i < param->value.NumElements(); ++i) {
        param->value.at(i) -= 0.5f * param->grad.at(i);
      }
    }
  }
  EXPECT_LT(last_loss, first_loss * 0.7f);
}

TEST(ModelGraphDeathTest, ForwardReferenceRejected) {
  Rng rng(13);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  (void)g.AddInput(p.input);
  EXPECT_DEATH(g.AddNode(p.a, {5}, true), "Check failed");
}

TEST(ModelGraphDeathTest, ValidateRequiresOutputs) {
  Rng rng(14);
  ChainParts p = MakeChainParts(&rng);
  ModelGraph g("m");
  (void)g.AddInput(p.input);
  EXPECT_DEATH(g.Validate(), "no outputs");
}

}  // namespace
}  // namespace graph
}  // namespace nautilus
