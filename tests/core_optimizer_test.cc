// Tests for the multi-model graph, materialization optimizer (including the
// structured-B&B vs MILP cross-check), memory estimator, and fusion.
#include <set>

#include <gtest/gtest.h>

#include "nautilus/core/fusion.h"
#include "nautilus/core/materialization.h"
#include "nautilus/core/memory_estimator.h"
#include "nautilus/core/multi_model.h"
#include "nautilus/core/profile.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

SystemConfig TestConfig() {
  SystemConfig config;
  config.expected_max_records = 1000;
  config.disk_budget_bytes = 10.0 * (1 << 20);
  config.memory_budget_bytes = 256.0 * (1 << 20);
  config.workspace_bytes = 1 << 20;
  // Slow-ish disk so load-vs-compute tradeoffs are non-trivial at tiny
  // scale.
  config.disk_bytes_per_second = 2.0 * (1 << 20);
  config.flops_per_second = 1.0e9;
  return config;
}

// A small FTR-style workload over a shared tiny encoder.
Workload MakeTinyWorkload(zoo::BertLikeModel* source, int num_models) {
  Workload workload;
  const zoo::BertFeature kFeatures[] = {
      zoo::BertFeature::kLastHidden, zoo::BertFeature::kSecondLastHidden,
      zoo::BertFeature::kSumLast4, zoo::BertFeature::kConcatLast4};
  for (int i = 0; i < num_models; ++i) {
    Hyperparams hp;
    hp.batch_size = 8;
    hp.learning_rate = 1e-3;
    hp.epochs = 2 + (i % 2);
    workload.emplace_back(
        zoo::BuildBertFeatureTransferModel(
            *source, kFeatures[i % 4], 3, "m" + std::to_string(i),
            100 + static_cast<uint64_t>(i)),
        hp);
  }
  return workload;
}

TEST(MultiModelGraphTest, MergesSharedFrozenPrefix) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 1);
  Workload workload = MakeTinyWorkload(&source, 4);
  MultiModelGraph mm(&workload, TestConfig());
  // Shared units: input + embedding + 4 blocks, plus per-model combiners
  // (sum_last4 and concat_last4 add one frozen combiner each).
  EXPECT_EQ(static_cast<int>(mm.units().size()), 6 + 2);
  // The embedding unit is used by all four models.
  int max_usage = 0;
  for (const auto& unit : mm.units()) {
    max_usage = std::max(max_usage,
                         static_cast<int>(unit.used_by_models.size()));
  }
  EXPECT_EQ(max_usage, 4);
}

TEST(MultiModelGraphTest, UnitsAreTopological) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 2);
  Workload workload = MakeTinyWorkload(&source, 3);
  MultiModelGraph mm(&workload, TestConfig());
  for (size_t u = 0; u < mm.units().size(); ++u) {
    for (int p : mm.units()[u].parents) {
      EXPECT_LT(p, static_cast<int>(u));
    }
  }
}

TEST(MaterializationTest, ZeroBudgetMatchesNoMaterialization) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 3);
  Workload workload = MakeTinyWorkload(&source, 3);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);

  auto none = optimizer.EvaluateGivenUnits(
      std::vector<bool>(mm.units().size(), false),
      config.expected_max_records);
  auto zero_budget = optimizer.Optimize(0.0, config.expected_max_records);
  EXPECT_NEAR(zero_budget.total_cost_flops, none.total_cost_flops, 1e-3);
  for (bool z : zero_budget.materialize) EXPECT_FALSE(z);
}

TEST(MaterializationTest, CostMonotoneInBudget) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 4);
  Workload workload = MakeTinyWorkload(&source, 4);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);

  double prev_cost = -1.0;
  for (double budget :
       {0.0, 64.0 * 1024, 512.0 * 1024, 4.0 * (1 << 20), 64.0 * (1 << 20)}) {
    auto choice = optimizer.Optimize(budget, config.expected_max_records);
    EXPECT_TRUE(choice.proved_optimal);
    EXPECT_LE(choice.storage_bytes, budget + 1e-6);
    if (prev_cost >= 0.0) {
      EXPECT_LE(choice.total_cost_flops, prev_cost + 1e-3)
          << "more budget must never cost more";
    }
    prev_cost = choice.total_cost_flops;
  }
}

TEST(MaterializationTest, StructuredSolverMatchesMilp) {
  // The exact B&B (Gurobi substitute) and the literal Eq. 9/10 MILP must
  // agree on the optimum across budgets.
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 5);
  Workload workload = MakeTinyWorkload(&source, 2);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);

  for (double budget : {0.0, 32.0 * 1024, 1.0 * (1 << 20), 32.0 * (1 << 20)}) {
    auto structured = optimizer.Optimize(budget, 200);
    auto milp = optimizer.OptimizeWithMilp(budget, 200);
    EXPECT_NEAR(structured.total_cost_flops, milp.total_cost_flops,
                1e-6 * std::max(1.0, structured.total_cost_flops))
        << "budget " << budget;
  }
}

TEST(MaterializationTest, UnusedMaterializationsDiscarded) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 6);
  Workload workload = MakeTinyWorkload(&source, 3);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);
  auto choice = optimizer.Optimize(1e12, config.expected_max_records);
  // Every materialized unit must actually be loaded by some plan.
  std::set<std::string> loaded_keys;
  for (int i = 0; i < mm.num_models(); ++i) {
    const auto& plan = choice.model_plans[static_cast<size_t>(i)];
    const auto& model = workload[static_cast<size_t>(i)].model;
    for (int j = 0; j < model.num_nodes(); ++j) {
      if (plan.actions[static_cast<size_t>(j)] == NodeAction::kLoaded &&
          !model.node(j).parents.empty()) {
        loaded_keys.insert(
            mm.units()[static_cast<size_t>(mm.UnitOf(i, j))].key);
      }
    }
  }
  for (size_t u = 0; u < mm.units().size(); ++u) {
    if (choice.materialize[u]) {
      EXPECT_TRUE(loaded_keys.count(mm.units()[u].key) > 0)
          << "unit " << u << " materialized but never loaded";
    }
  }
}

TEST(ExecutionGroupTest, SingletonMatchesModelPlanCost) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 7);
  Workload workload = MakeTinyWorkload(&source, 2);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);
  auto choice = optimizer.Optimize(config.disk_budget_bytes, 1000);

  for (int i = 0; i < mm.num_models(); ++i) {
    ExecutionGroup group = BuildExecutionGroup(mm, {i}, choice.materialize);
    // Group costs are epoch-weighted per record; model plans additionally
    // weight by r.
    const double expected =
        choice.model_plans[static_cast<size_t>(i)].total_cost / 1000.0;
    EXPECT_NEAR(group.epoch_weighted_cost_flops, expected,
                1e-6 * std::max(1.0, expected));
  }
}

TEST(ExecutionGroupTest, FusedCostNeverExceedsSumOfParts) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 8);
  Workload workload = MakeTinyWorkload(&source, 4);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);
  auto choice = optimizer.Optimize(config.disk_budget_bytes, 1000);

  for (int i = 0; i < mm.num_models(); ++i) {
    for (int j = i + 1; j < mm.num_models(); ++j) {
      if (workload[static_cast<size_t>(i)].hp.batch_size !=
          workload[static_cast<size_t>(j)].hp.batch_size) {
        continue;
      }
      ExecutionGroup a = BuildExecutionGroup(mm, {i}, choice.materialize);
      ExecutionGroup b = BuildExecutionGroup(mm, {j}, choice.materialize);
      ExecutionGroup ab =
          BuildExecutionGroup(mm, {i, j}, choice.materialize);
      EXPECT_LE(ab.epoch_weighted_cost_flops,
                a.epoch_weighted_cost_flops + b.epoch_weighted_cost_flops +
                    1e-6);
      EXPECT_EQ(ab.branches.size(), 2u);
    }
  }
}

TEST(MemoryEstimatorTest, ScalesWithBatchAndFusion) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 9);
  Workload workload = MakeTinyWorkload(&source, 2);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  std::vector<bool> no_mat(mm.units().size(), false);

  ExecutionGroup single = BuildExecutionGroup(mm, {0}, no_mat);
  ExecutionGroup fused = BuildExecutionGroup(mm, {0, 1}, no_mat);

  MemoryEstimate m1 = EstimatePeakMemory(single, config);
  MemoryEstimate m2 = EstimatePeakMemory(fused, config);
  EXPECT_GT(m1.activation_bytes, 0.0);
  EXPECT_GT(m2.total(), m1.total());  // fusion costs memory
  EXPECT_GE(m1.parameter_bytes, 0.0);
  EXPECT_DOUBLE_EQ(m1.workspace_bytes, config.workspace_bytes);

  // Doubling the batch doubles the activation estimate.
  ExecutionGroup bigger = single;
  bigger.batch_size *= 2;
  MemoryEstimate m3 = EstimatePeakMemory(bigger, config);
  EXPECT_NEAR(m3.activation_bytes, 2.0 * m1.activation_bytes,
              1e-6 * m1.activation_bytes);
}

TEST(FusionTest, DisabledYieldsSingletons) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 10);
  Workload workload = MakeTinyWorkload(&source, 3);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  std::vector<bool> no_mat(mm.units().size(), false);
  FusionOutcome outcome =
      FuseModels(mm, no_mat, config.memory_budget_bytes, config,
                 /*enable_fusion=*/false);
  EXPECT_EQ(outcome.groups.size(), workload.size());
  EXPECT_EQ(outcome.fusions_applied, 0);
}

TEST(FusionTest, GroupsPartitionTheWorkload) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 11);
  Workload workload = MakeTinyWorkload(&source, 5);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  MaterializationOptimizer optimizer(&mm);
  auto choice = optimizer.Optimize(config.disk_budget_bytes, 1000);
  FusionOutcome outcome = FuseModels(mm, choice.materialize,
                                     config.memory_budget_bytes, config);
  std::set<int> seen;
  for (const ExecutionGroup& group : outcome.groups) {
    for (const PlanBranch& branch : group.branches) {
      EXPECT_TRUE(seen.insert(branch.model_index).second)
          << "model in two groups";
    }
  }
  EXPECT_EQ(seen.size(), workload.size());
}

TEST(FusionTest, FusesSharedPrefixWorkloads) {
  // With a generous memory budget, models sharing a frozen encoder should
  // fuse (shared compute dominates).
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 12);
  Workload workload = MakeTinyWorkload(&source, 4);
  SystemConfig config = TestConfig();
  config.memory_budget_bytes = 1e12;
  MultiModelGraph mm(&workload, config);
  std::vector<bool> no_mat(mm.units().size(), false);
  FusionOutcome outcome =
      FuseModels(mm, no_mat, config.memory_budget_bytes, config);
  EXPECT_LT(outcome.groups.size(), workload.size());
  EXPECT_GT(outcome.fusions_applied, 0);
}

TEST(FusionTest, TinyMemoryBudgetPreventsFusion) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 13);
  Workload workload = MakeTinyWorkload(&source, 4);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);
  std::vector<bool> no_mat(mm.units().size(), false);
  FusionOutcome outcome = FuseModels(mm, no_mat, /*memory_budget_bytes=*/1.0,
                                     config);
  EXPECT_EQ(outcome.groups.size(), workload.size());
}

TEST(FusionTest, RespectsBatchSizeBoundary) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 14);
  Workload workload = MakeTinyWorkload(&source, 4);
  workload[0].hp.batch_size = 8;
  workload[1].hp.batch_size = 8;
  workload[2].hp.batch_size = 16;
  workload[3].hp.batch_size = 16;
  SystemConfig config = TestConfig();
  config.memory_budget_bytes = 1e12;
  MultiModelGraph mm(&workload, config);
  std::vector<bool> no_mat(mm.units().size(), false);
  FusionOutcome outcome =
      FuseModels(mm, no_mat, config.memory_budget_bytes, config);
  for (const ExecutionGroup& group : outcome.groups) {
    for (const PlanBranch& branch : group.branches) {
      EXPECT_EQ(branch.hp.batch_size, group.batch_size);
    }
  }
}

TEST(TheoreticalSpeedupTest, GreaterForFrozenHeavyWorkloads) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 15);
  SystemConfig config = TestConfig();

  Workload feature_transfer = MakeTinyWorkload(&source, 2);
  Workload fine_tune;
  fine_tune.emplace_back(
      zoo::BuildBertFineTuneModel(source, source.config().num_blocks, 3,
                                  "ft_all", 50),
      Hyperparams{});

  const double ft_speedup = TheoreticalSpeedup(feature_transfer, config);
  const double tune_speedup = TheoreticalSpeedup(fine_tune, config);
  EXPECT_GT(ft_speedup, 1.5);
  EXPECT_LT(tune_speedup, ft_speedup);
  EXPECT_GE(tune_speedup, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
