// Randomized structural property tests: random layer DAGs with random
// freezing schemes, checked for materializability laws, reuse-plan
// legality under random materialized sets, and multi-model merge soundness.
#include <set>

#include <gtest/gtest.h>

#include "nautilus/core/materialization.h"
#include "nautilus/core/multi_model.h"
#include "nautilus/core/plan.h"
#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/basic.h"
#include "nautilus/nn/combine.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

constexpr int64_t kWidth = 4;

// Builds a random DAG of Dense/Add layers over a shared input, with random
// freezing. Shared pretrained prefix layers come from `shared` so multiple
// models can overlap.
graph::ModelGraph RandomModel(const std::string& name,
                              const std::shared_ptr<nn::InputLayer>& input,
                              std::vector<nn::LayerPtr>* shared, Rng* rng) {
  graph::ModelGraph g(name);
  const int in = g.AddInput(input);
  std::vector<int> nodes = {in};
  const int depth = 3 + static_cast<int>(rng->UniformInt(5));
  bool trainable_seen = false;
  for (int d = 0; d < depth; ++d) {
    // Reuse a shared pretrained layer for the prefix when available and we
    // have not diverged into trainable territory yet.
    const bool can_share =
        !trainable_seen && d < static_cast<int>(shared->size());
    nn::LayerPtr layer;
    bool frozen;
    std::vector<int> parents;
    if (rng->Uniform() < 0.3 && nodes.size() >= 2) {
      // Combiner over two random earlier nodes.
      int a = nodes[static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(nodes.size())))];
      int b = nodes[static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(nodes.size())))];
      if (a == b) b = nodes[0];
      layer = std::make_shared<nn::AddLayer>(name + "_add" +
                                             std::to_string(d));
      parents = {a, b};
      frozen = true;  // parameter-free
    } else if (can_share && rng->Uniform() < 0.7) {
      layer = (*shared)[static_cast<size_t>(d)];
      parents = {nodes.back()};
      frozen = true;
    } else {
      layer = std::make_shared<nn::DenseLayer>(
          name + "_d" + std::to_string(d), kWidth, kWidth,
          nn::Activation::kRelu, rng);
      parents = {nodes.back()};
      frozen = rng->Uniform() < 0.4;
      if (!frozen) trainable_seen = true;
    }
    nodes.push_back(g.AddNode(layer, parents, frozen));
  }
  // Trainable head so the model has something to learn.
  const int head = g.AddNode(
      std::make_shared<nn::DenseLayer>(name + "_head", kWidth, 2,
                                       nn::Activation::kNone, rng),
      {nodes.back()}, /*frozen=*/false);
  g.MarkOutput(head);
  g.Validate();
  return g;
}

TEST(FuzzGraphTest, MaterializabilityLawsHoldOnRandomDags) {
  Rng rng(1234);
  auto input = std::make_shared<nn::InputLayer>("fz_in", Shape({kWidth}));
  std::vector<nn::LayerPtr> shared;
  for (int d = 0; d < 4; ++d) {
    shared.push_back(std::make_shared<nn::DenseLayer>(
        "fz_shared" + std::to_string(d), kWidth, kWidth,
        nn::Activation::kRelu, &rng));
  }
  for (int trial = 0; trial < 60; ++trial) {
    graph::ModelGraph g =
        RandomModel("fz" + std::to_string(trial), input, &shared, &rng);
    const auto mask = g.MaterializableMask();
    for (const auto& node : g.nodes()) {
      const size_t j = static_cast<size_t>(node.id);
      if (node.parents.empty()) {
        EXPECT_TRUE(mask[j]);
        continue;
      }
      bool parents_mat = true;
      for (int p : node.parents) {
        parents_mat = parents_mat && mask[static_cast<size_t>(p)];
      }
      // Definition 2.4 exactly: materializable <=> frozen && parents
      // materializable.
      EXPECT_EQ(mask[j], node.frozen && parents_mat)
          << "trial " << trial << " node " << node.id;
    }
  }
}

TEST(FuzzGraphTest, RandomWorkloadPlansAreLegalAtAnyBudget) {
  Rng rng(99);
  auto input = std::make_shared<nn::InputLayer>("fz_in2", Shape({kWidth}));
  std::vector<nn::LayerPtr> shared;
  for (int d = 0; d < 4; ++d) {
    shared.push_back(std::make_shared<nn::DenseLayer>(
        "fz2_shared" + std::to_string(d), kWidth, kWidth,
        nn::Activation::kRelu, &rng));
  }
  core::SystemConfig config;
  config.expected_max_records = 100;
  config.flops_per_second = 1e6;  // make loading attractive
  config.disk_bytes_per_second = 1e9;

  for (int trial = 0; trial < 12; ++trial) {
    core::Workload workload;
    const int models = 2 + static_cast<int>(rng.UniformInt(3));
    for (int m = 0; m < models; ++m) {
      core::Hyperparams hp;
      hp.batch_size = 8;
      hp.epochs = 1 + rng.UniformInt(3);
      workload.emplace_back(
          RandomModel("fzw" + std::to_string(trial) + "_" +
                          std::to_string(m),
                      input, &shared, &rng),
          hp);
    }
    core::MultiModelGraph mm(&workload, config);
    core::MaterializationOptimizer optimizer(&mm);
    for (double budget : {0.0, 1e4, 1e9}) {
      auto choice = optimizer.Optimize(budget, 100);
      EXPECT_LE(choice.storage_bytes, budget + 1e-6);
      // Per-model plan legality.
      for (int m = 0; m < mm.num_models(); ++m) {
        const auto& plan = choice.model_plans[static_cast<size_t>(m)];
        const auto& model = workload[static_cast<size_t>(m)].model;
        for (int j = 0; j < model.num_nodes(); ++j) {
          const auto action = plan.actions[static_cast<size_t>(j)];
          if (model.IsOutput(j)) {
            EXPECT_NE(action, core::NodeAction::kPruned);
          }
          if (action == core::NodeAction::kComputed) {
            for (int p : model.node(j).parents) {
              EXPECT_NE(plan.actions[static_cast<size_t>(p)],
                        core::NodeAction::kPruned);
            }
          }
          if (action == core::NodeAction::kLoaded &&
              !model.node(j).parents.empty()) {
            const int unit = mm.UnitOf(m, j);
            ASSERT_GE(unit, 0);
            EXPECT_TRUE(choice.materialize[static_cast<size_t>(unit)]);
          }
        }
      }
      // Fused groups stay legal too.
      std::vector<int> all_models(static_cast<size_t>(mm.num_models()));
      for (int m = 0; m < mm.num_models(); ++m) {
        all_models[static_cast<size_t>(m)] = m;
      }
      core::ExecutionGroup group =
          core::BuildExecutionGroup(mm, all_models, choice.materialize);
      EXPECT_EQ(group.branches.size(), all_models.size());
      for (const auto& node : group.nodes) {
        EXPECT_FALSE(node.branches_using.empty());
      }
    }
  }
}

TEST(FuzzGraphTest, MergeNeverCrossesDifferentExpressions) {
  // Multi-model units map back to identical expression hashes only.
  Rng rng(321);
  auto input = std::make_shared<nn::InputLayer>("fz_in3", Shape({kWidth}));
  std::vector<nn::LayerPtr> shared;
  for (int d = 0; d < 4; ++d) {
    shared.push_back(std::make_shared<nn::DenseLayer>(
        "fz3_shared" + std::to_string(d), kWidth, kWidth,
        nn::Activation::kRelu, &rng));
  }
  core::SystemConfig config;
  for (int trial = 0; trial < 20; ++trial) {
    core::Workload workload;
    for (int m = 0; m < 3; ++m) {
      workload.emplace_back(
          RandomModel("fzm" + std::to_string(trial) + "_" +
                          std::to_string(m),
                      input, &shared, &rng),
          core::Hyperparams{});
    }
    core::MultiModelGraph mm(&workload, config);
    for (int m = 0; m < mm.num_models(); ++m) {
      const auto& profile = mm.profiles()[static_cast<size_t>(m)];
      const auto& model = workload[static_cast<size_t>(m)].model;
      for (int j = 0; j < model.num_nodes(); ++j) {
        const int unit = mm.UnitOf(m, j);
        if (unit < 0) continue;
        EXPECT_EQ(mm.units()[static_cast<size_t>(unit)].expr_hash,
                  profile.expr_hashes[static_cast<size_t>(j)]);
      }
    }
  }
}

}  // namespace
}  // namespace nautilus
