#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "nautilus/core/successive_halving.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

SystemConfig ShConfig() {
  SystemConfig config;
  config.expected_max_records = 200;
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 2ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  return config;
}

Workload EightCandidates(const zoo::BertLikeModel& source) {
  Workload workload;
  const zoo::BertFeature kFeatures[] = {
      zoo::BertFeature::kLastHidden, zoo::BertFeature::kSecondLastHidden,
      zoo::BertFeature::kSumLast4, zoo::BertFeature::kConcatLast4};
  int index = 0;
  for (zoo::BertFeature feature : kFeatures) {
    for (double lr : {5e-3, 5e-4}) {
      Hyperparams hp;
      hp.batch_size = 10;
      hp.learning_rate = lr;
      hp.epochs = 99;  // ignored: rung budget overrides
      workload.emplace_back(
          zoo::BuildBertFeatureTransferModel(
              source, feature, 3, "sh_m" + std::to_string(index),
              800 + static_cast<uint64_t>(index)),
          hp);
      ++index;
    }
  }
  return workload;
}

class SuccessiveHalvingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_sh_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SuccessiveHalvingTest, HalvesDownToOneSurvivor) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 21);
  Workload workload = EightCandidates(source);
  data::LabeledDataset pool = data::GenerateTextPool(source, 120, 3, 9);
  data::LabeledDataset train = pool.Slice(0, 90);
  data::LabeledDataset valid = pool.Slice(90, 120);

  SuccessiveHalvingOptions options;
  options.eta = 2;
  options.rung_epochs = 1;
  SuccessiveHalvingResult result = RunSuccessiveHalving(
      &workload, ShConfig(), train, valid, dir_.string(), options);

  // 8 -> 4 -> 2 -> 1: four rungs, 15 model-rungs total (vs 8 * 4 = 32 for
  // training everything to the full budget).
  ASSERT_EQ(result.rungs.size(), 4u);
  EXPECT_EQ(result.rungs[0].trained_models.size(), 8u);
  EXPECT_EQ(result.rungs[1].trained_models.size(), 4u);
  EXPECT_EQ(result.rungs[2].trained_models.size(), 2u);
  EXPECT_EQ(result.rungs[3].trained_models.size(), 1u);
  EXPECT_EQ(result.total_model_rungs, 15);
  EXPECT_GE(result.best_model, 0);
  EXPECT_LT(result.best_model, 8);

  // Survivors of each rung are a subset of what was trained, ranked by
  // accuracy.
  for (const auto& rung : result.rungs) {
    std::set<int> trained(rung.trained_models.begin(),
                          rung.trained_models.end());
    float min_survivor_acc = 2.0f;
    float max_loser_acc = -1.0f;
    std::set<int> survivors(rung.survivors.begin(), rung.survivors.end());
    for (size_t i = 0; i < rung.trained_models.size(); ++i) {
      EXPECT_TRUE(trained.count(rung.evals[i].model_index));
      if (survivors.count(rung.evals[i].model_index)) {
        min_survivor_acc =
            std::min(min_survivor_acc, rung.evals[i].val_accuracy);
      } else {
        max_loser_acc = std::max(max_loser_acc, rung.evals[i].val_accuracy);
      }
    }
    if (max_loser_acc >= 0.0f) {
      EXPECT_GE(min_survivor_acc, max_loser_acc);
    }
  }
}

TEST_F(SuccessiveHalvingTest, MinSurvivorsStopsEarly) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 22);
  Workload workload = EightCandidates(source);
  data::LabeledDataset pool = data::GenerateTextPool(source, 80, 3, 10);
  SuccessiveHalvingOptions options;
  options.eta = 2;
  options.min_survivors = 4;
  SuccessiveHalvingResult result = RunSuccessiveHalving(
      &workload, ShConfig(), pool.Slice(0, 60), pool.Slice(60, 80),
      dir_.string(), options);
  // 8 -> 4, then the final rung trains the 4 survivors and stops.
  ASSERT_EQ(result.rungs.size(), 2u);
  EXPECT_EQ(result.rungs.back().trained_models.size(), 4u);
}

TEST_F(SuccessiveHalvingTest, SurvivorsKeepTraining) {
  // A candidate surviving every rung accumulates training: its final-rung
  // accuracy should (weakly) beat its rung-0 accuracy on this learnable
  // task. We assert the mechanism rather than luck: weights persist, so
  // evals across rungs for the same model must differ.
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 23);
  Workload workload = EightCandidates(source);
  data::LabeledDataset pool =
      data::GenerateTextPool(source, 120, 3, 11, /*label_noise=*/0.02);
  SuccessiveHalvingOptions options;
  options.rung_epochs = 1;
  SuccessiveHalvingResult result = RunSuccessiveHalving(
      &workload, ShConfig(), pool.Slice(0, 90), pool.Slice(90, 120),
      dir_.string(), options);
  const int winner = result.rungs.back().trained_models[0];
  float first_acc = -1.0f;
  float last_acc = -1.0f;
  float first_loss = -1.0f;
  float last_loss = -1.0f;
  for (const auto& rung : result.rungs) {
    for (const auto& eval : rung.evals) {
      if (eval.model_index == winner) {
        if (first_acc < 0.0f) {
          first_acc = eval.val_accuracy;
          first_loss = eval.val_loss;
        }
        last_acc = eval.val_accuracy;
        last_loss = eval.val_loss;
      }
    }
  }
  ASSERT_GE(first_acc, 0.0f);
  // Training continued: loss or accuracy must have moved.
  EXPECT_TRUE(last_loss != first_loss || last_acc != first_acc);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
