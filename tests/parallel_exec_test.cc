// Thread-pool stress tests and the cross-thread-count determinism guarantee:
// a fused multi-model group trained at degrees 1, 2, and 8 must produce
// bitwise-identical losses, gradients, and parameters.
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "nautilus/graph/executor.h"
#include "nautilus/graph/model_graph.h"
#include "nautilus/nn/basic.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/util/parallel.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

// Pins the parallelism degree for one test and restores the previous value.
class ScopedDegree {
 public:
  explicit ScopedDegree(int degree) : saved_(ParallelismDegree()) {
    SetParallelismDegree(degree);
  }
  ~ScopedDegree() { SetParallelismDegree(saved_); }

 private:
  int saved_;
};

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ScopedDegree degree(4);
  constexpr int64_t kOuter = 64;
  constexpr int64_t kInner = 100;
  std::vector<int64_t> out(kOuter, 0);
  ParallelFor(kOuter, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // The nested call collapses to inline execution inside a pool worker
      // and re-dispatches from the caller thread; either way each inner
      // index writes its own slot.
      std::vector<int64_t> inner(kInner, 0);
      ParallelFor(kInner, [&inner](int64_t ib, int64_t ie) {
        for (int64_t j = ib; j < ie; ++j) inner[static_cast<size_t>(j)] = j;
      });
      out[static_cast<size_t>(i)] =
          std::accumulate(inner.begin(), inner.end(), int64_t{0}) + i;
    }
  });
  const int64_t inner_sum = kInner * (kInner - 1) / 2;
  for (int64_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], inner_sum + i);
  }
}

TEST(ThreadPoolTest, ConcurrentParallelForFromManyThreads) {
  ScopedDegree degree(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 20;
  constexpr int64_t kN = 1000;
  std::vector<std::vector<int64_t>> results(
      kCallers, std::vector<int64_t>(static_cast<size_t>(kN), 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&results, t] {
      for (int round = 0; round < kRounds; ++round) {
        ParallelFor(kN, [&results, t](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            results[static_cast<size_t>(t)][static_cast<size_t>(i)] =
                i * (t + 1);
          }
        });
      }
    });
  }
  for (std::thread& c : callers) c.join();
  for (int t = 0; t < kCallers; ++t) {
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(results[static_cast<size_t>(t)][static_cast<size_t>(i)],
                i * (t + 1));
    }
  }
}

TEST(ThreadPoolTest, ExceptionFromWorkerChunkPropagates) {
  ScopedDegree degree(4);
  EXPECT_THROW(
      ParallelFor(1000,
                  [](int64_t begin, int64_t) {
                    // Chunk 0 runs on the caller; only worker chunks throw.
                    if (begin > 0) throw std::runtime_error("worker boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionFromCallerChunkPropagates) {
  ScopedDegree degree(4);
  EXPECT_THROW(ParallelFor(1000,
                           [](int64_t begin, int64_t) {
                             if (begin == 0)
                               throw std::runtime_error("caller boom");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, UsableAfterException) {
  ScopedDegree degree(4);
  try {
    ParallelFor(1000, [](int64_t, int64_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  std::vector<int64_t> out(256, 0);
  ParallelFor(256, [&out](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[static_cast<size_t>(i)] = i;
  });
  for (int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, TaskGroupReusableAfterWait) {
  ScopedDegree degree(4);
  TaskGroup group;
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 8);
  }
}

TEST(ThreadPoolTest, SurvivesDegreeResizesAndIdleReuse) {
  for (int degree : {1, 2, 8, 3}) {
    ScopedDegree d(degree);
    std::vector<int64_t> out(4096, 0);
    ParallelFor(4096, [&out](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        out[static_cast<size_t>(i)] = 2 * i;
      }
    });
    for (int64_t i = 0; i < 4096; ++i) {
      ASSERT_EQ(out[static_cast<size_t>(i)], 2 * i) << "degree " << degree;
    }
  }
  // Let the pool go idle, then reuse it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ScopedDegree d(4);
  std::vector<int64_t> out(512, 0);
  ParallelFor(512, [&out](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[static_cast<size_t>(i)] = i + 7;
  });
  for (int64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i + 7);
  }
}

// ---------------------------------------------------------------------------
// Determinism: identical results at every thread count.
// ---------------------------------------------------------------------------

struct TrainingResult {
  std::vector<float> losses;                // per step x head, in order
  std::vector<std::vector<float>> grads;    // final grad of each param
  std::vector<std::vector<float>> params;   // final value of each param
};

// Builds a fused multi-model group (shared frozen trunk, four trainable
// two-layer heads) from a fixed seed and trains it for a few SGD steps at
// the given parallelism degree.
TrainingResult RunFusedTraining(int degree) {
  ScopedDegree d(degree);
  constexpr int64_t kBatch = 32;
  constexpr int64_t kDim = 64;
  constexpr int64_t kHidden = 48;
  constexpr int64_t kClasses = 8;
  constexpr int kHeads = 4;
  constexpr int kSteps = 3;

  Rng rng(123);
  graph::ModelGraph model("fused_determinism_group");
  const int input_id = model.AddInput(
      std::make_shared<nn::InputLayer>("input", Shape({kDim})));
  const int trunk_id = model.AddNode(
      std::make_shared<nn::DenseLayer>("trunk", kDim, kDim,
                                       nn::Activation::kGelu, &rng),
      {input_id}, /*frozen=*/true);
  std::vector<int> head_outputs;
  for (int h = 0; h < kHeads; ++h) {
    const std::string tag = std::to_string(h);
    const int hidden_id = model.AddNode(
        std::make_shared<nn::DenseLayer>("head" + tag + "_fc1", kDim, kHidden,
                                         nn::Activation::kRelu, &rng),
        {trunk_id}, /*frozen=*/false);
    const int logits_id = model.AddNode(
        std::make_shared<nn::DenseLayer>("head" + tag + "_fc2", kHidden,
                                         kClasses, nn::Activation::kNone,
                                         &rng),
        {hidden_id}, /*frozen=*/false);
    model.MarkOutput(logits_id);
    head_outputs.push_back(logits_id);
  }
  model.Validate();

  graph::Executor exec(&model);
  std::unordered_map<int, Tensor> feeds;
  feeds[input_id] = Tensor::Randn(Shape({kBatch, kDim}), &rng, 1.0f);
  std::vector<int32_t> labels(static_cast<size_t>(kBatch));
  for (int64_t i = 0; i < kBatch; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(i % kClasses);
  }

  TrainingResult result;
  for (int step = 0; step < kSteps; ++step) {
    exec.ZeroGrads();
    exec.Forward(feeds, /*training=*/true);
    std::unordered_map<int, Tensor> output_grads;
    for (int id : head_outputs) {
      Tensor probs = ops::SoftmaxForward(exec.Output(id));
      Tensor dlogits;
      result.losses.push_back(ops::SoftmaxCrossEntropy(probs, labels,
                                                       &dlogits));
      output_grads[id] = std::move(dlogits);
    }
    exec.Backward(output_grads);
    for (nn::Parameter* p : exec.TrainableParams()) {
      float* value = p->value.data();
      const float* grad = p->grad.data();
      for (int64_t k = 0; k < p->value.NumElements(); ++k) {
        value[k] -= 0.05f * grad[k];
      }
    }
  }
  for (nn::Parameter* p : exec.TrainableParams()) {
    result.grads.emplace_back(p->grad.data(),
                              p->grad.data() + p->grad.NumElements());
    result.params.emplace_back(p->value.data(),
                               p->value.data() + p->value.NumElements());
  }
  return result;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(WavefrontDeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  const TrainingResult baseline = RunFusedTraining(1);
  ASSERT_FALSE(baseline.losses.empty());
  ASSERT_FALSE(baseline.params.empty());
  for (int degree : {2, 8}) {
    const TrainingResult run = RunFusedTraining(degree);
    ASSERT_EQ(run.losses.size(), baseline.losses.size());
    EXPECT_TRUE(BitwiseEqual(run.losses, baseline.losses))
        << "losses differ at degree " << degree;
    ASSERT_EQ(run.grads.size(), baseline.grads.size());
    ASSERT_EQ(run.params.size(), baseline.params.size());
    for (size_t i = 0; i < baseline.grads.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(run.grads[i], baseline.grads[i]))
          << "grad " << i << " differs at degree " << degree;
      EXPECT_TRUE(BitwiseEqual(run.params[i], baseline.params[i]))
          << "param " << i << " differs at degree " << degree;
    }
  }
}

// Re-running the same degree must also be self-consistent (guards against
// nondeterminism that happens to agree across degrees by luck once).
TEST(WavefrontDeterminismTest, RepeatableAtSameDegree) {
  const TrainingResult a = RunFusedTraining(8);
  const TrainingResult b = RunFusedTraining(8);
  EXPECT_TRUE(BitwiseEqual(a.losses, b.losses));
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(a.params[i], b.params[i]));
  }
}

}  // namespace
}  // namespace nautilus
