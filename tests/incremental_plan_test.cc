// Tests of incremental replanning and background materialization: MILP
// warm starts must not change what the solver returns, background appends
// must produce byte-identical feeds, and a failed background append must
// fall back to a synchronous rebuild without corrupting model selection.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/core/materialization.h"
#include "nautilus/core/model_selection.h"
#include "nautilus/core/multi_model.h"
#include "nautilus/core/planner.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/obs/metrics.h"
#include "nautilus/solver/milp.h"
#include "nautilus/storage/fault_injection.h"
#include "nautilus/storage/io_stats.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/util/parallel.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

SystemConfig TestConfig() {
  SystemConfig config;
  config.expected_max_records = 500;
  config.disk_budget_bytes = 10.0 * (1 << 20);
  config.memory_budget_bytes = 256.0 * (1 << 20);
  config.workspace_bytes = 1 << 20;
  config.disk_bytes_per_second = 2.0 * (1 << 20);
  config.flops_per_second = 1.0e9;
  config.per_model_setup_seconds = 0.01;
  return config;
}

// Fast disk + slow compute: materializing features wins, so the
// model-selection tests actually exercise the store-backed feed path.
SystemConfig LoadFriendlyConfig() {
  SystemConfig config;
  config.expected_max_records = 500;
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 2ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  return config;
}

Workload MakeTinyWorkload(const zoo::BertLikeModel& source, int num_models,
                          uint64_t seed) {
  Workload workload;
  const zoo::BertFeature kFeatures[] = {
      zoo::BertFeature::kLastHidden, zoo::BertFeature::kSecondLastHidden,
      zoo::BertFeature::kSumLast4, zoo::BertFeature::kConcatLast4};
  for (int i = 0; i < num_models; ++i) {
    Hyperparams hp;
    hp.batch_size = 10;
    hp.learning_rate = 1e-3;
    hp.epochs = 2;
    workload.emplace_back(
        zoo::BuildBertFeatureTransferModel(
            source, kFeatures[i % 4], 3, "inc_m" + std::to_string(i),
            seed + static_cast<uint64_t>(i)),
        hp);
  }
  return workload;
}

int64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().counter(name).value();
}

// The background paths should run on real worker threads (this is also what
// the CI ThreadSanitizer stage relies on); a single-core budget would
// otherwise degenerate every wait into inline helping.
class ParallelismEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    if (ParallelismDegree() < 4) SetParallelismDegree(4);
  }
};
[[maybe_unused]] const auto* const kParallelismEnv =
    ::testing::AddGlobalTestEnvironment(new ParallelismEnv);

// ---------------------------------------------------------------------------
// (a) Warm-started MILP solves: bit-identical results, fingerprint hits
//     fast, perturbed programs re-searched exactly.
// ---------------------------------------------------------------------------

TEST(MilpWarmStartTest, FingerprintHitIsBitIdenticalAndFast) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 21);
  Workload workload = MakeTinyWorkload(source, 6, 500);
  MultiModelGraph mm(&workload, TestConfig());
  MaterializationOptimizer optimizer(&mm);
  const MilpProblem problem =
      optimizer.BuildMilp(TestConfig().disk_budget_bytes, 500);

  const int64_t hits_before = CounterValue("milp.warm_start.hits");
  const MilpSolution cold = SolveMilp(problem);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  ASSERT_GT(cold.nodes_explored, 0);

  MilpWarmStart warm;
  UpdateMilpWarmStart(problem, cold, &warm);
  ASSERT_TRUE(warm.valid);

  MilpOptions warm_options;
  warm_options.warm_start = &warm;

  // Re-solving the unchanged program must return the stored solution
  // verbatim (no search at all) and therefore be bit-identical.
  const MilpSolution hit = SolveMilp(problem, warm_options);
  EXPECT_EQ(hit.status, LpStatus::kOptimal);
  EXPECT_EQ(hit.objective, cold.objective);  // exact, not approximate
  ASSERT_EQ(hit.x.size(), cold.x.size());
  for (size_t i = 0; i < hit.x.size(); ++i) EXPECT_EQ(hit.x[i], cold.x[i]);
  EXPECT_EQ(hit.nodes_explored, 0);
  EXPECT_GE(CounterValue("milp.warm_start.hits"), hits_before + 1);

  // Timing: the warm re-solve skips branch-and-bound entirely, so it must
  // be at least 5x faster than the cold solve over repeated runs.
  const int kReps = 5;
  using Clock = std::chrono::steady_clock;
  const auto cold_begin = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    const MilpSolution s = SolveMilp(problem);
    ASSERT_EQ(s.status, LpStatus::kOptimal);
  }
  const auto cold_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           cold_begin)
          .count();
  const auto warm_begin = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    const MilpSolution s = SolveMilp(problem, warm_options);
    ASSERT_EQ(s.nodes_explored, 0);
  }
  const auto warm_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           warm_begin)
          .count();
  EXPECT_GE(cold_ns, 5 * warm_ns)
      << "cold " << cold_ns << "ns vs warm " << warm_ns << "ns";
}

TEST(MilpWarmStartTest, PerturbedProgramReSolvesExactly) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 22);
  Workload workload = MakeTinyWorkload(source, 5, 600);
  MultiModelGraph mm(&workload, TestConfig());
  MaterializationOptimizer optimizer(&mm);
  const double budget = TestConfig().disk_budget_bytes;

  MilpWarmStart warm;
  const MaterializationChoice first =
      optimizer.OptimizeWithMilp(budget, 500, MilpOptions(), &warm);
  ASSERT_TRUE(warm.valid);

  // Doubling r perturbs the objective and budget rows: the warm start may
  // only seed the incumbent, never change the proven optimum.
  const int64_t seeds_before = CounterValue("milp.warm_start.incumbent_seeds");
  const int64_t hits_before = CounterValue("milp.warm_start.hits");
  const MaterializationChoice cold = optimizer.OptimizeWithMilp(budget, 1000);
  const MaterializationChoice warmed =
      optimizer.OptimizeWithMilp(budget, 1000, MilpOptions(), &warm);
  EXPECT_EQ(warmed.materialize, cold.materialize);
  EXPECT_NEAR(warmed.total_cost_flops, cold.total_cost_flops,
              1e-6 * cold.total_cost_flops);
  EXPECT_EQ(CounterValue("milp.warm_start.hits"), hits_before);
  EXPECT_GE(CounterValue("milp.warm_start.incumbent_seeds"),
            seeds_before + 1);
  (void)first;

  // The warm start now stores the doubled program: re-solving it is a hit.
  const MaterializationChoice again =
      optimizer.OptimizeWithMilp(budget, 1000, MilpOptions(), &warm);
  EXPECT_EQ(again.materialize, cold.materialize);
  EXPECT_GE(CounterValue("milp.warm_start.hits"), hits_before + 1);
}

TEST(PlannerCacheTest, ReusesPlanUntilInputsChange) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 23);
  Workload workload = MakeTinyWorkload(source, 4, 700);
  SystemConfig config = TestConfig();
  MultiModelGraph mm(&workload, config);

  PlannerCache cache;
  const PlannedWorkload p1 = PlanWorkload(
      mm, MaterializationMode::kOptimized, /*enable_fusion=*/true, config,
      &cache);
  EXPECT_FALSE(cache.last_reused);
  const PlannedWorkload p2 = PlanWorkload(
      mm, MaterializationMode::kOptimized, /*enable_fusion=*/true, config,
      &cache);
  EXPECT_TRUE(cache.last_reused);
  EXPECT_EQ(p2.choice.materialize, p1.choice.materialize);
  EXPECT_EQ(p2.fusion.groups.size(), p1.fusion.groups.size());

  // Any planner input change (here: the record-count scale) must miss.
  config.expected_max_records *= 2;
  const PlannedWorkload p3 = PlanWorkload(
      mm, MaterializationMode::kOptimized, /*enable_fusion=*/true, config,
      &cache);
  EXPECT_FALSE(cache.last_reused);
  (void)p3;
}

// ---------------------------------------------------------------------------
// (b) Background materialization: identical feeds and results vs synchronous.
// ---------------------------------------------------------------------------

class IncrementalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_incplan_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    storage::FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

// Dumps every persisted feed as "<split>:<raw payload bytes>", sorted.
// Store keys embed process-local layer UIDs, so two runs in one process
// name the same unit differently — but the payloads must match exactly.
std::vector<std::string> ReadFeedPayloads(const std::filesystem::path& dir) {
  storage::IoStats stats;
  storage::TensorStore store((dir / "features").string(), &stats);
  std::vector<std::string> payloads;
  for (const std::string& key : store.ListKeys()) {
    if (key.rfind("session.", 0) == 0) continue;
    auto value = store.Get(key);
    EXPECT_TRUE(value.ok()) << key;
    if (!value.ok()) continue;
    const std::string split = key.substr(key.rfind('.') + 1);
    payloads.push_back(
        split + ":" +
        std::string(reinterpret_cast<const char*>(value->data()),
                    static_cast<size_t>(value->SizeBytes())));
  }
  std::sort(payloads.begin(), payloads.end());
  return payloads;
}

std::vector<FitResult> RunCycles(const std::filesystem::path& dir,
                                 bool background, int cycles,
                                 uint64_t model_seed = 800) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 24);
  data::LabeledDataset pool = data::GenerateTextPool(source, 240, 3, 5);
  ModelSelectionOptions options;
  options.seed = 7;
  options.background_materialization = background;
  ModelSelection selection(MakeTinyWorkload(source, 3, model_seed),
                           LoadFriendlyConfig(), dir.string(), options);
  data::LabelingSimulator labeler(pool, 60, 0.75);
  std::vector<FitResult> results;
  for (int c = 0; c < cycles; ++c) {
    auto cycle = labeler.NextCycle();
    results.push_back(selection.Fit(cycle.train, cycle.valid));
  }
  return results;
}

TEST_F(IncrementalPlanTest, BackgroundMatchesSynchronousBitwise) {
  const int64_t completions_before =
      CounterValue("materializer.background.completions");
  const std::vector<FitResult> sync =
      RunCycles(dir_ / "sync", /*background=*/false, 3);
  const int64_t completions_mid =
      CounterValue("materializer.background.completions");
  EXPECT_EQ(completions_mid, completions_before)
      << "synchronous run must not touch the background path";
  const std::vector<FitResult> bg =
      RunCycles(dir_ / "bg", /*background=*/true, 3);
  EXPECT_GT(CounterValue("materializer.background.completions"),
            completions_mid);

  // Model selection is unchanged, bit for bit.
  ASSERT_EQ(bg.size(), sync.size());
  for (size_t c = 0; c < bg.size(); ++c) {
    EXPECT_EQ(bg[c].best_model, sync[c].best_model) << "cycle " << c;
    EXPECT_EQ(bg[c].best_accuracy, sync[c].best_accuracy) << "cycle " << c;
    ASSERT_EQ(bg[c].evals.size(), sync[c].evals.size());
    for (size_t m = 0; m < bg[c].evals.size(); ++m) {
      EXPECT_EQ(bg[c].evals[m].val_accuracy, sync[c].evals[m].val_accuracy);
      EXPECT_EQ(bg[c].evals[m].val_loss, sync[c].evals[m].val_loss);
    }
  }
  // Every cycle reuses the plan cached at construction (r never doubles
  // here), so each increment runs in background.
  EXPECT_TRUE(bg[0].background);
  EXPECT_TRUE(bg[1].background);
  EXPECT_TRUE(bg[2].background);

  // And the persisted feeds are byte-identical.
  const auto sync_feeds = ReadFeedPayloads(dir_ / "sync");
  const auto bg_feeds = ReadFeedPayloads(dir_ / "bg");
  ASSERT_FALSE(sync_feeds.empty());
  EXPECT_EQ(bg_feeds, sync_feeds);
}

// ---------------------------------------------------------------------------
// (c) Failed background append: synchronous fallback, selection unchanged.
// ---------------------------------------------------------------------------

TEST_F(IncrementalPlanTest, FailedAppendFallsBackWithoutCorruption) {
  const std::vector<FitResult> reference =
      RunCycles(dir_ / "ref", /*background=*/true, 2);

  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 24);
  data::LabeledDataset pool = data::GenerateTextPool(source, 240, 3, 5);
  ModelSelectionOptions options;
  options.seed = 7;
  options.background_materialization = true;
  ModelSelection selection(MakeTinyWorkload(source, 3, 800),
                           LoadFriendlyConfig(),
                           (dir_ / "faulty").string(), options);
  data::LabelingSimulator labeler(pool, 60, 0.75);
  auto c1 = labeler.NextCycle();
  selection.Fit(c1.train, c1.valid);

  // Cycle 2 runs in background; its very first store append fails, which
  // must trigger the synchronous per-split rebuild — not an abort, not a
  // wrong answer.
  const int64_t fallbacks_before =
      CounterValue("materializer.background.fallbacks");
  const int64_t faults_before = CounterValue("store.faults_injected");
  storage::FaultInjector::Global().Arm(
      storage::FaultInjector::Kind::kFailAppend, 1);
  auto c2 = labeler.NextCycle();
  const FitResult faulty = selection.Fit(c2.train, c2.valid);
  storage::FaultInjector::Global().Disarm();

  EXPECT_TRUE(faulty.background);
  EXPECT_GE(CounterValue("materializer.background.fallbacks"),
            fallbacks_before + 1);
  EXPECT_GE(CounterValue("store.faults_injected"), faults_before + 1);

  const FitResult& clean = reference[1];
  EXPECT_EQ(faulty.best_model, clean.best_model);
  EXPECT_EQ(faulty.best_accuracy, clean.best_accuracy);
  ASSERT_EQ(faulty.evals.size(), clean.evals.size());
  for (size_t m = 0; m < faulty.evals.size(); ++m) {
    EXPECT_EQ(faulty.evals[m].val_accuracy, clean.evals[m].val_accuracy);
  }

  // The rebuilt feeds are byte-identical to the clean run's.
  EXPECT_EQ(ReadFeedPayloads(dir_ / "faulty"), ReadFeedPayloads(dir_ / "ref"));
}

}  // namespace
}  // namespace core
}  // namespace nautilus
