// Tests for the extension features: search spaces (grid/random), unrolled
// recurrent models, and materialize-then-train data augmentation.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "nautilus/core/multi_model.h"
#include "nautilus/core/planner.h"
#include "nautilus/core/search_space.h"
#include "nautilus/data/augmentation.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/graph/executor.h"
#include "nautilus/tensor/ops.h"
#include "nautilus/zoo/bert_like.h"
#include "nautilus/zoo/rnn_like.h"

namespace nautilus {
namespace {

// ---------------------------------------------------------------------------
// SearchSpace
// ---------------------------------------------------------------------------

TEST(SearchSpaceTest, GridIsCartesianProduct) {
  core::SearchSpace space;
  space.AddBatchSizes({16, 32})
      .AddLearningRates({5e-5, 3e-5, 2e-5})
      .AddEpochs({5})
      .AddVariants({0, 1, 2, 3});
  EXPECT_EQ(space.GridSize(), 24);
  auto grid = space.Grid();
  ASSERT_EQ(grid.size(), 24u);
  // Every combination distinct; indices sequential.
  std::set<std::tuple<int64_t, int64_t, double, int64_t>> seen;
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, static_cast<int>(i));
    seen.insert({grid[i].variant, grid[i].hp.batch_size,
                 grid[i].hp.learning_rate, grid[i].hp.epochs});
  }
  EXPECT_EQ(seen.size(), 24u);
}

TEST(SearchSpaceTest, GridMatchesPaperFtr2Shape) {
  // FTR-2's Table 3 grid expressed via SearchSpace.
  core::SearchSpace space;
  space.AddBatchSizes({16, 32})
      .AddLearningRates({5e-5, 3e-5, 2e-5})
      .AddVariants({0, 1, 2, 3});
  EXPECT_EQ(space.GridSize(), 24);
}

TEST(SearchSpaceTest, RandomSampleWithoutReplacement) {
  core::SearchSpace space;
  space.AddBatchSizes({16, 32}).AddLearningRates({1e-3, 1e-4}).AddVariants(
      {0, 1, 2});
  Rng rng(3);
  auto sample = space.RandomSample(5, &rng);
  ASSERT_EQ(sample.size(), 5u);
  std::set<std::tuple<int64_t, int64_t, double>> seen;
  for (const auto& a : sample) {
    EXPECT_TRUE(
        seen.insert({a.variant, a.hp.batch_size, a.hp.learning_rate}).second);
  }
  // Oversampling clamps to the grid.
  Rng rng2(4);
  EXPECT_EQ(space.RandomSample(100, &rng2).size(), 12u);
}

TEST(SearchSpaceTest, BuildWorkloadInvokesBuilderPerAssignment) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 1);
  core::SearchSpace space;
  space.AddLearningRates({1e-3, 1e-4}).AddVariants({0, 1});
  auto grid = space.Grid();
  core::Workload workload = core::SearchSpace::BuildWorkload(
      grid, [&](const core::SearchSpace::Assignment& a) {
        const zoo::BertFeature feature = a.variant == 0
                                             ? zoo::BertFeature::kLastHidden
                                             : zoo::BertFeature::kSumLast4;
        return zoo::BuildBertFeatureTransferModel(
            source, feature, 3, "ss_m" + std::to_string(a.index),
            100 + static_cast<uint64_t>(a.index));
      });
  ASSERT_EQ(workload.size(), 4u);
  for (size_t i = 0; i < workload.size(); ++i) {
    workload[i].model.Validate();
    EXPECT_EQ(workload[i].hp.learning_rate, grid[i].hp.learning_rate);
  }
}

// ---------------------------------------------------------------------------
// Unrolled recurrent models (Section 2.5)
// ---------------------------------------------------------------------------

TEST(RnnLikeTest, UnrolledSourceIsDagAndMaterializable) {
  zoo::RnnLikeModel source(zoo::RnnConfig::TinyScale(), 2);
  graph::ModelGraph g = source.BuildSourceGraph();
  // input + embedding + h0 + (select + cell) per step.
  EXPECT_EQ(g.num_nodes(), 3 + 2 * source.config().seq_len);
  auto mask = g.MaterializableMask();
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_TRUE(mask[static_cast<size_t>(i)]) << "node " << i;
  }
}

TEST(RnnLikeTest, UnrolledForwardMatchesManualRecurrence) {
  zoo::RnnLikeModel source(zoo::RnnConfig::TinyScale(), 3);
  const auto& cfg = source.config();
  graph::ModelGraph g = source.BuildSourceGraph();
  Rng rng(4);
  Tensor ids(Shape({2, cfg.seq_len}));
  for (int64_t i = 0; i < ids.NumElements(); ++i) {
    ids.at(i) = static_cast<float>(rng.UniformInt(cfg.vocab));
  }
  graph::Executor ex(&g);
  ex.Forward({{g.input_ids()[0], ids}}, false);
  Tensor unrolled = ex.Output(g.output_ids()[0]);

  // Manual recurrence over the same embedding.
  std::unique_ptr<nn::LayerCache> cache;
  Tensor emb = source.embedding()->Forward({&ids}, &cache);
  Tensor h(Shape({2, cfg.hidden}));
  for (int64_t t = 0; t < cfg.seq_len; ++t) {
    Tensor xt = ops::SelectSeqPosition(emb, t);
    h = source.cell()->Forward({&xt, &h}, &cache);
  }
  EXPECT_LT(Tensor::MaxAbsDiff(unrolled, h), 1e-6f);
}

TEST(RnnLikeTest, UnrolledChainsMergeAcrossCandidates) {
  zoo::RnnLikeModel source(zoo::RnnConfig::TinyScale(), 5);
  core::Workload workload;
  core::Hyperparams hp;
  hp.batch_size = 8;
  hp.epochs = 2;
  for (int i = 0; i < 3; ++i) {
    hp.learning_rate = 1e-3 / (i + 1);
    workload.emplace_back(
        zoo::BuildRnnFeatureTransferModel(source, 3,
                                          "rnn_m" + std::to_string(i),
                                          50 + static_cast<uint64_t>(i)),
        hp);
  }
  core::SystemConfig config;
  config.expected_max_records = 200;
  core::MultiModelGraph mm(&workload, config);
  // The whole unrolled chain merges: unit count is one model's
  // materializable count, not three models' worth.
  const int per_model = 3 + 2 * static_cast<int>(source.config().seq_len);
  EXPECT_EQ(static_cast<int>(mm.units().size()), per_model);
  // And the final hidden state is shared by all three candidates.
  int max_shared = 0;
  for (const auto& unit : mm.units()) {
    max_shared =
        std::max(max_shared, static_cast<int>(unit.used_by_models.size()));
  }
  EXPECT_EQ(max_shared, 3);
}

TEST(RnnLikeTest, FineTuneUnrollLeavesNothingMaterializableBeyondInputs) {
  zoo::RnnLikeModel source(zoo::RnnConfig::TinyScale(), 6);
  graph::ModelGraph g = zoo::BuildRnnFineTuneModel(source, 3, "rnn_ft", 60);
  auto mask = g.MaterializableMask();
  int materializable = 0;
  for (int i = 0; i < g.num_nodes(); ++i) {
    materializable += mask[static_cast<size_t>(i)] ? 1 : 0;
  }
  // Input + embedding + h0 + the per-step selectors stay materializable
  // (they only depend on the frozen embedding); every cell application and
  // the head do not.
  EXPECT_EQ(materializable,
            3 + static_cast<int>(source.config().seq_len));
}

TEST(RnnLikeTest, UnrolledModelTrains) {
  zoo::RnnLikeModel source(zoo::RnnConfig::TinyScale(), 7);
  graph::ModelGraph g =
      zoo::BuildRnnFeatureTransferModel(source, 2, "rnn_train", 70);
  Rng rng(8);
  Tensor ids(Shape({12, source.config().seq_len}));
  std::vector<int32_t> labels;
  for (int64_t i = 0; i < ids.NumElements(); ++i) {
    ids.at(i) = static_cast<float>(rng.UniformInt(source.config().vocab));
  }
  for (int64_t i = 0; i < 12; ++i) {
    labels.push_back(static_cast<int32_t>(ids.at(i * ids.shape().dim(1))) % 2);
  }
  graph::Executor ex(&g);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    ex.ZeroGrads();
    ex.Forward({{g.input_ids()[0], ids}}, true);
    Tensor probs = ops::SoftmaxForward(ex.Output(g.output_ids()[0]));
    Tensor dlogits;
    const float loss = ops::SoftmaxCrossEntropy(probs, labels, &dlogits);
    if (step == 0) first = loss;
    last = loss;
    ex.Backward({{g.output_ids()[0], dlogits}});
    for (nn::Parameter* p : ex.TrainableParams()) {
      for (int64_t i = 0; i < p->value.NumElements(); ++i) {
        p->value.at(i) -= 0.5f * p->grad.at(i);
      }
    }
  }
  EXPECT_LT(last, first);
}

TEST(RnnCellGradTest, BackwardMatchesFiniteDifference) {
  Rng rng(9);
  nn::RnnCellLayer cell("cell", 3, 4, &rng);
  Tensor x = Tensor::Randn(Shape({2, 3}), &rng, 0.7f);
  Tensor h = Tensor::Randn(Shape({2, 4}), &rng, 0.7f);
  Tensor w = Tensor::Randn(Shape({2, 4}), &rng, 1.0f);
  std::unique_ptr<nn::LayerCache> cache;
  (void)cell.Forward({&x, &h}, &cache);
  cell.ZeroGrads();
  auto grads = cell.Backward(w, {&x, &h}, *cache);
  ASSERT_EQ(grads.size(), 2u);

  auto weighted = [&](const Tensor& a, const Tensor& b) {
    std::unique_ptr<nn::LayerCache> c;
    Tensor y = cell.Forward({&a, &b}, &c);
    double acc = 0.0;
    for (int64_t i = 0; i < y.NumElements(); ++i) {
      acc += static_cast<double>(y.at(i)) * w.at(i);
    }
    return acc;
  };
  // Probe a few entries of each input gradient.
  for (int64_t i : {int64_t{0}, int64_t{3}, int64_t{5}}) {
    Tensor xp = x;
    xp.at(i) += 1e-3f;
    Tensor xm = x;
    xm.at(i) -= 1e-3f;
    const double numeric = (weighted(xp, h) - weighted(xm, h)) / 2e-3;
    EXPECT_NEAR(grads[0].at(i), numeric, 5e-2);
  }
}

// ---------------------------------------------------------------------------
// Data augmentation (Section 2.5)
// ---------------------------------------------------------------------------

TEST(AugmentationTest, TextAugmentPreservesLabelsAndVocab) {
  zoo::BertLikeModel encoder(zoo::BertConfig::TinyScale(), 10);
  data::LabeledDataset pool = data::GenerateTextPool(encoder, 20, 3, 11);
  data::LabeledDataset augmented =
      data::AugmentTextPool(pool, /*copies=*/2, /*replace_prob=*/0.3,
                            encoder.config().vocab, 12);
  EXPECT_EQ(augmented.size(), 60);
  for (int64_t i = 0; i < 60; ++i) {
    EXPECT_EQ(augmented.labels()[static_cast<size_t>(i)],
              pool.labels()[static_cast<size_t>(i % 20)]);
  }
  for (int64_t i = 0; i < augmented.inputs().NumElements(); ++i) {
    const float v = augmented.inputs().at(i);
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, static_cast<float>(encoder.config().vocab));
  }
  // Copies actually differ from the originals.
  EXPECT_GT(Tensor::MaxAbsDiff(augmented.inputs().SliceRows(20, 40),
                               pool.inputs()),
            0.0f);
}

TEST(AugmentationTest, ImageAugmentPreservesShapeAndLabels) {
  zoo::ResNetConfig cfg = zoo::ResNetConfig::MiniScale();
  data::LabeledDataset pool = data::GenerateImagePool(cfg, 10, 2, 13);
  data::LabeledDataset augmented =
      data::AugmentImagePool(pool, /*copies=*/1, /*noise_stddev=*/0.1f, 14);
  EXPECT_EQ(augmented.size(), 20);
  EXPECT_EQ(augmented.inputs().shape().ElementsPerRecord(),
            pool.inputs().shape().ElementsPerRecord());
  EXPECT_GT(Tensor::MaxAbsDiff(augmented.inputs().SliceRows(10, 20),
                               pool.inputs()),
            0.0f);
}

TEST(AugmentationTest, ZeroCopiesIsIdentity) {
  zoo::ResNetConfig cfg = zoo::ResNetConfig::MiniScale();
  data::LabeledDataset pool = data::GenerateImagePool(cfg, 6, 2, 15);
  data::LabeledDataset same = data::AugmentImagePool(pool, 0, 0.1f, 16);
  EXPECT_EQ(same.size(), pool.size());
  EXPECT_EQ(Tensor::MaxAbsDiff(same.inputs(), pool.inputs()), 0.0f);
}

}  // namespace
}  // namespace nautilus
