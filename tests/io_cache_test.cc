// I/O engine tests: LRU cache policy, invalidation, view lifetime, and
// bitwise equality of the copy / mmap / cached read paths under concurrency.
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/storage/io_cache.h"
#include "nautilus/storage/io_stats.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace storage {
namespace {

std::shared_ptr<const Tensor> MakeShard(int64_t rows, float fill) {
  auto t = std::make_shared<Tensor>(Shape({rows, 1}));
  t->Fill(fill);
  return t;
}

TEST(IoCacheTest, EvictsLeastRecentlyUsedUnderTinyBudget) {
  // Budget fits exactly two 4-byte single-row shards.
  IoCache cache(2 * sizeof(float));
  cache.Insert("a", MakeShard(1, 1.0f));
  cache.Insert("b", MakeShard(1, 2.0f));
  EXPECT_EQ(cache.entry_count(), 2);
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("c", MakeShard(1, 3.0f));
  EXPECT_EQ(cache.entry_count(), 2);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

TEST(IoCacheTest, OversizedEntryIsNotCached) {
  IoCache cache(sizeof(float));
  cache.Insert("big", MakeShard(2, 1.0f));
  EXPECT_EQ(cache.entry_count(), 0);
  EXPECT_EQ(cache.resident_bytes(), 0);
}

TEST(IoCacheTest, InsertReplacesExistingEntry) {
  IoCache cache(1024);
  cache.Insert("a", MakeShard(1, 1.0f));
  cache.Insert("a", MakeShard(2, 5.0f));
  EXPECT_EQ(cache.entry_count(), 1);
  auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->shape().dim(0), 2);
  EXPECT_FLOAT_EQ(hit->at(0), 5.0f);
}

TEST(IoCacheTest, EvictedEntryStaysAliveThroughHandedOutPointer) {
  IoCache cache(2 * sizeof(float));
  cache.Insert("a", MakeShard(2, 7.0f));
  auto held = cache.Lookup("a");
  ASSERT_NE(held, nullptr);
  cache.Insert("b", MakeShard(2, 8.0f));  // evicts "a"
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  // The shared_ptr keeps the evicted shard's bytes valid.
  EXPECT_FLOAT_EQ(held->at(1), 7.0f);
}

TEST(IoCacheTest, SetBudgetEvictsDownAndZeroDisables) {
  IoCache cache(4 * sizeof(float));
  cache.Insert("a", MakeShard(2, 1.0f));
  cache.Insert("b", MakeShard(2, 2.0f));
  EXPECT_EQ(cache.entry_count(), 2);
  cache.SetBudget(2 * sizeof(float));
  EXPECT_EQ(cache.entry_count(), 1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);  // "a" was least recently used
  cache.SetBudget(0);
  EXPECT_EQ(cache.entry_count(), 0);
  cache.Insert("c", MakeShard(1, 3.0f));
  EXPECT_EQ(cache.entry_count(), 0);
}

class IoEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_io_engine_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(IoEngineTest, CacheInvalidatedAfterAppendRows) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor a(Shape({2, 2}), {1, 2, 3, 4});
  ASSERT_TRUE(store.Put("f", a).ok());
  ASSERT_TRUE(store.Get("f").ok());  // warm the cache
  EXPECT_EQ(store.cache_entry_count(), 1);
  ASSERT_TRUE(store.AppendRows("f", Tensor(Shape({1, 2}), {5, 6})).ok());
  EXPECT_EQ(store.cache_entry_count(), 0);
  auto grown = store.Get("f");
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(grown->at(5), 6.0f);
}

TEST_F(IoEngineTest, ZeroBudgetStoreAlwaysReadsDisk) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats, /*cache_budget_bytes=*/0);
  ASSERT_TRUE(store.Put("f", Tensor(Shape({16, 4}))).ok());
  ASSERT_TRUE(store.Get("f").ok());
  const int64_t after_first = stats.bytes_read();
  ASSERT_TRUE(store.Get("f").ok());
  EXPECT_GT(stats.bytes_read(), after_first);  // every read hits disk
  EXPECT_EQ(store.cache_entry_count(), 0);
}

TEST_F(IoEngineTest, MmapViewLifetimeOutlivesRemove) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats, /*cache_budget_bytes=*/0);
  Rng rng(3);
  Tensor t = Tensor::Randn(Shape({32, 8}), &rng, 1.0f);
  ASSERT_TRUE(store.Put("f", t).ok());
  auto view = store.Get("f");  // uncached: the view pins the mapping itself
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->IsView());
  ASSERT_TRUE(store.Remove("f").ok());
  EXPECT_FALSE(store.Contains("f"));
  EXPECT_EQ(Tensor::MaxAbsDiff(*view, t), 0.0f);
}

TEST_F(IoEngineTest, CopyMmapAndCachedPathsAreBitwiseIdentical) {
  IoStats stats;
  // Two stores over the same directory: one cached (mmap + cache paths),
  // one with the cache disabled (forced-disk copy path).
  TensorStore cached(dir_.string(), &stats);
  TensorStore copying(dir_.string(), &stats, /*cache_budget_bytes=*/0);
  Rng rng(11);
  const int64_t kRows = 64;
  Tensor t = Tensor::Randn(Shape({kRows, 16}), &rng, 1.0f);
  ASSERT_TRUE(cached.Put("f", t).ok());

  std::vector<std::thread> readers;
  std::vector<int> failures(8, 0);
  for (int i = 0; i < 8; ++i) {
    readers.emplace_back([&, i] {
      for (int iter = 0; iter < 20; ++iter) {
        auto via_cache = cached.Get("f");          // mmap then cached hits
        auto via_rows = cached.GetRowsView("f", 0, kRows);
        auto via_copy = copying.GetRows("f", 0, kRows);  // buffered disk read
        if (!via_cache.ok() || !via_rows.ok() || !via_copy.ok() ||
            Tensor::MaxAbsDiff(*via_cache, t) != 0.0f ||
            Tensor::MaxAbsDiff(*via_rows, t) != 0.0f ||
            Tensor::MaxAbsDiff(*via_copy, t) != 0.0f) {
          failures[static_cast<size_t>(i)] = 1;
          return;
        }
      }
    });
  }
  for (std::thread& th : readers) th.join();
  for (int f : failures) EXPECT_EQ(f, 0);
}

}  // namespace
}  // namespace storage
}  // namespace nautilus
