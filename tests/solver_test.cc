#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "nautilus/solver/closure.h"
#include "nautilus/solver/maxflow.h"
#include "nautilus/solver/milp.h"
#include "nautilus/solver/simplex.h"
#include "nautilus/util/random.h"

namespace nautilus {
namespace {

// ---------------------------------------------------------------------------
// MaxFlow
// ---------------------------------------------------------------------------

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow f(2);
  f.AddEdge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 1), 5.0);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 5.0);
  f.AddEdge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 2), 3.0);
}

TEST(MaxFlowTest, ParallelPaths) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 2.0);
  f.AddEdge(1, 3, 2.0);
  f.AddEdge(0, 2, 3.0);
  f.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 3.0);
}

TEST(MaxFlowTest, ClassicCLRSExample) {
  // Known max flow of 23.
  MaxFlow f(6);
  f.AddEdge(0, 1, 16);
  f.AddEdge(0, 2, 13);
  f.AddEdge(1, 2, 10);
  f.AddEdge(2, 1, 4);
  f.AddEdge(1, 3, 12);
  f.AddEdge(3, 2, 9);
  f.AddEdge(2, 4, 14);
  f.AddEdge(4, 3, 7);
  f.AddEdge(3, 5, 20);
  f.AddEdge(4, 5, 4);
  EXPECT_DOUBLE_EQ(f.Solve(0, 5), 23.0);
}

TEST(MaxFlowTest, MinCutSeparatesSourceAndSink) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(1, 2, 10.0);
  f.Solve(0, 2);
  std::vector<bool> side = f.SourceSideOfMinCut(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[1]);  // the 0->1 edge is the bottleneck
  EXPECT_FALSE(side[2]);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 2), 0.0);
}

// ---------------------------------------------------------------------------
// Closure
// ---------------------------------------------------------------------------

// Brute-force reference for closure instances.
double BruteForceClosure(int n, const std::vector<double>& weights,
                         const std::vector<std::pair<int, int>>& reqs,
                         const std::vector<int>& forced) {
  double best = -1e18;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (int v : forced) {
      if (!(mask & (1 << v))) ok = false;
    }
    for (const auto& [a, b] : reqs) {
      if ((mask & (1 << a)) && !(mask & (1 << b))) ok = false;
    }
    if (!ok) continue;
    double w = 0.0;
    for (int v = 0; v < n; ++v) {
      if (mask & (1 << v)) w += weights[static_cast<size_t>(v)];
    }
    best = std::max(best, w);
  }
  return best;
}

TEST(ClosureTest, PicksOnlyProfitable) {
  ClosureProblem p;
  int a = p.AddNode(5.0);
  int b = p.AddNode(-2.0);
  int c = p.AddNode(-10.0);
  p.AddRequirement(a, b);  // choosing a requires b
  (void)c;
  auto sol = p.Solve();
  EXPECT_TRUE(sol.chosen[static_cast<size_t>(a)]);
  EXPECT_TRUE(sol.chosen[static_cast<size_t>(b)]);
  EXPECT_FALSE(sol.chosen[static_cast<size_t>(c)]);
  EXPECT_DOUBLE_EQ(sol.total_weight, 3.0);
}

TEST(ClosureTest, RejectsUnprofitableChain) {
  ClosureProblem p;
  int a = p.AddNode(5.0);
  int b = p.AddNode(-9.0);
  p.AddRequirement(a, b);
  auto sol = p.Solve();
  EXPECT_FALSE(sol.chosen[static_cast<size_t>(a)]);
  EXPECT_DOUBLE_EQ(sol.total_weight, 0.0);
}

TEST(ClosureTest, ForcedNodePullsDependencies) {
  ClosureProblem p;
  int a = p.AddNode(-3.0);
  int b = p.AddNode(-4.0);
  p.AddRequirement(a, b);
  p.ForceInclude(a);
  auto sol = p.Solve();
  EXPECT_TRUE(sol.chosen[static_cast<size_t>(a)]);
  EXPECT_TRUE(sol.chosen[static_cast<size_t>(b)]);
  EXPECT_DOUBLE_EQ(sol.total_weight, -7.0);
}

TEST(ClosureTest, RandomInstancesMatchBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(8));  // up to 9 nodes
    ClosureProblem p;
    std::vector<double> weights;
    for (int v = 0; v < n; ++v) {
      double w = std::round(rng.Uniform(-10.0, 10.0));
      p.AddNode(w);
      weights.push_back(w);
    }
    std::vector<std::pair<int, int>> reqs;
    const int num_edges = static_cast<int>(rng.UniformInt(2 * n));
    for (int e = 0; e < num_edges; ++e) {
      // Edges only from lower to higher index: guarantees a DAG.
      int a = static_cast<int>(rng.UniformInt(n));
      int b = static_cast<int>(rng.UniformInt(n));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      p.AddRequirement(a, b);
      reqs.emplace_back(a, b);
    }
    std::vector<int> forced;
    if (rng.Uniform() < 0.5) {
      int v = static_cast<int>(rng.UniformInt(n));
      p.ForceInclude(v);
      forced.push_back(v);
    }
    auto sol = p.Solve();
    const double ref = BruteForceClosure(n, weights, reqs, forced);
    EXPECT_NEAR(sol.total_weight, ref, 1e-6) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------------

TEST(SimplexTest, SimpleTwoVar) {
  // min -x - y s.t. x + y <= 4, x <= 2 => optimum -4 at (2,2) or (anything
  // summing to 4 with x<=2); objective is -4.
  LinearProgram lp(2);
  lp.SetObjective(0, -1.0);
  lp.SetObjective(1, -1.0);
  lp.AddLeqRow({{0, 1.0}, {1, 1.0}}, 4.0);
  lp.SetUpperBound(0, 2.0);
  auto sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-7);
}

TEST(SimplexTest, EqualityRow) {
  // min x + 2y s.t. x + y = 3, y <= 1 => x=2, y=1, obj=4.
  LinearProgram lp(2);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 2.0);
  lp.AddEqRow({{0, 1.0}, {1, 1.0}}, 3.0);
  lp.SetUpperBound(1, 1.0);
  auto sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // min pushes y down to 0 actually: x=3, y=0 obj 3. y<=1 not binding.
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-7);
}

TEST(SimplexTest, GeqRowsNeedPhase1) {
  // min x s.t. x >= 5 => x = 5.
  LinearProgram lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddGeqRow({{0, 1.0}}, 5.0);
  auto sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 5.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  LinearProgram lp(1);
  lp.AddGeqRow({{0, 1.0}}, 5.0);
  lp.SetUpperBound(0, 2.0);
  auto sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LinearProgram lp(1);
  lp.SetObjective(0, -1.0);
  auto sol = SolveLp(lp);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateDoesNotCycle) {
  // Classic degenerate instance; Bland's rule must terminate.
  LinearProgram lp(4);
  lp.SetObjective(0, -0.75);
  lp.SetObjective(1, 150.0);
  lp.SetObjective(2, -0.02);
  lp.SetObjective(3, 6.0);
  lp.AddLeqRow({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, 0.0);
  lp.AddLeqRow({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, 0.0);
  lp.AddLeqRow({{2, 1.0}}, 1.0);
  auto sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

// Brute-force LP check on random binary-box LPs by enumerating vertices is
// hard; instead cross-check MILP against exhaustive enumeration below, which
// also exercises the simplex.

// ---------------------------------------------------------------------------
// MILP
// ---------------------------------------------------------------------------

TEST(MilpTest, SimpleKnapsack) {
  // max 10a + 6b + 4c (i.e. min negative) s.t. a+b+c <= 2 (binary).
  MilpProblem p(3);
  for (int j = 0; j < 3; ++j) {
    p.is_integer[static_cast<size_t>(j)] = true;
    p.lp.SetUpperBound(j, 1.0);
  }
  p.lp.SetObjective(0, -10.0);
  p.lp.SetObjective(1, -6.0);
  p.lp.SetObjective(2, -4.0);
  p.lp.AddLeqRow({{0, 1.0}, {1, 1.0}, {2, 1.0}}, 2.0);
  auto sol = SolveMilp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -16.0, 1e-6);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[2], 0.0, 1e-6);
}

TEST(MilpTest, FractionalLpIntegerGap) {
  // Knapsack where the LP relaxation is fractional: weights 3,3,3 cap 5,
  // values 5,5,5 -> LP picks 5/3 items (value 25/3), MILP only 1 item.
  MilpProblem p(3);
  for (int j = 0; j < 3; ++j) {
    p.is_integer[static_cast<size_t>(j)] = true;
    p.lp.SetUpperBound(j, 1.0);
    p.lp.SetObjective(j, -5.0);
  }
  p.lp.AddLeqRow({{0, 3.0}, {1, 3.0}, {2, 3.0}}, 5.0);
  auto sol = SolveMilp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -5.0, 1e-6);
}

TEST(MilpTest, InfeasibleInteger) {
  // 2x = 1 with x binary has LP solution x=0.5 but no integer solution.
  MilpProblem p(1);
  p.is_integer[0] = true;
  p.lp.SetUpperBound(0, 1.0);
  p.lp.AddEqRow({{0, 2.0}}, 1.0);
  auto sol = SolveMilp(p);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

// Exhaustive reference for small binary MILPs.
double BruteForceBinaryMilp(const MilpProblem& p, bool* feasible) {
  const int n = p.lp.num_vars();
  double best = 1e18;
  *feasible = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) x[static_cast<size_t>(j)] = (mask >> j) & 1;
    bool ok = true;
    for (const auto& row : p.lp.rows()) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : row.coeffs) {
        lhs += coeff * x[static_cast<size_t>(var)];
      }
      if (lhs > row.rhs + 1e-9) ok = false;
    }
    if (!ok) continue;
    double obj = 0.0;
    for (int j = 0; j < n; ++j) {
      obj += p.lp.objective()[static_cast<size_t>(j)] *
             x[static_cast<size_t>(j)];
    }
    if (obj < best) best = obj;
    *feasible = true;
  }
  return best;
}

TEST(MilpTest, RandomBinaryInstancesMatchBruteForce) {
  Rng rng(123);
  for (int trial = 0; trial < 120; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(7));  // up to 8 binaries
    MilpProblem p(n);
    for (int j = 0; j < n; ++j) {
      p.is_integer[static_cast<size_t>(j)] = true;
      p.lp.SetUpperBound(j, 1.0);
      p.lp.SetObjective(j, std::round(rng.Uniform(-10.0, 10.0)));
    }
    const int rows = 1 + static_cast<int>(rng.UniformInt(4));
    for (int r = 0; r < rows; ++r) {
      std::vector<std::pair<int, double>> coeffs;
      for (int j = 0; j < n; ++j) {
        if (rng.Uniform() < 0.6) {
          coeffs.emplace_back(j, std::round(rng.Uniform(-5.0, 5.0)));
        }
      }
      if (coeffs.empty()) continue;
      p.lp.AddLeqRow(coeffs, std::round(rng.Uniform(-3.0, 8.0)));
    }
    bool ref_feasible = false;
    const double ref = BruteForceBinaryMilp(p, &ref_feasible);
    auto sol = SolveMilp(p);
    if (!ref_feasible) {
      EXPECT_EQ(sol.status, LpStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(sol.status, LpStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(sol.objective, ref, 1e-6) << "trial " << trial;
    }
  }
}

TEST(MilpTest, MixedIntegerAndContinuous) {
  // min -x - 10y, x continuous in [0, 1.5], y binary, x + y <= 2.
  MilpProblem p(2);
  p.is_integer[1] = true;
  p.lp.SetUpperBound(0, 1.5);
  p.lp.SetUpperBound(1, 1.0);
  p.lp.SetObjective(0, -1.0);
  p.lp.SetObjective(1, -10.0);
  p.lp.AddLeqRow({{0, 1.0}, {1, 1.0}}, 2.0);
  auto sol = SolveMilp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-6);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-6);
  EXPECT_NEAR(sol.objective, -11.0, 1e-6);
}

}  // namespace
}  // namespace nautilus
