// Tests of the evolving-workload extension (the paper's Section 2.5 future
// work): swapping the candidate set mid-stream with incremental
// materialized-store reconciliation.
#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "nautilus/core/materializer.h"
#include "nautilus/core/model_selection.h"
#include "nautilus/data/synthetic.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

class EvolvingWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_evolving_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

SystemConfig LoadFriendlyConfig() {
  SystemConfig config;
  config.expected_max_records = 500;
  config.disk_budget_bytes = 1ull << 30;
  config.memory_budget_bytes = 2ull << 30;
  config.workspace_bytes = 1 << 20;
  config.flops_per_second = 2e8;
  config.disk_bytes_per_second = 1ull << 30;
  config.per_model_setup_seconds = 0.01;
  return config;
}

Workload MakeWorkload(const zoo::BertLikeModel& source,
                      const std::vector<zoo::BertFeature>& features,
                      uint64_t seed) {
  Workload workload;
  Hyperparams hp;
  hp.batch_size = 10;
  hp.learning_rate = 1e-3;
  hp.epochs = 2;
  int index = 0;
  for (zoo::BertFeature feature : features) {
    workload.emplace_back(
        zoo::BuildBertFeatureTransferModel(
            source, feature, 3, "ev_m" + std::to_string(index),
            seed + static_cast<uint64_t>(index)),
        hp);
    ++index;
  }
  return workload;
}

TEST_F(EvolvingWorkloadTest, SharedUnitsSurviveWorkloadSwap) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 11);
  data::LabeledDataset pool = data::GenerateTextPool(source, 200, 3, 5);

  ModelSelection selection(
      MakeWorkload(source, {zoo::BertFeature::kLastHidden}, 100),
      LoadFriendlyConfig(), dir_.string(), {});

  data::LabelingSimulator labeler(pool, 60, 0.75);
  auto c1 = labeler.NextCycle();
  FitResult r1 = selection.Fit(c1.train, c1.valid);
  EXPECT_GE(r1.best_model, 0);
  // Last-hidden features must be materialized under this config.
  const auto& mm1 = selection.multi_model();
  int chosen1 = static_cast<int>(
      std::count(selection.materialization().materialize.begin(),
                 selection.materialization().materialize.end(), true));
  ASSERT_GT(chosen1, 0);
  (void)mm1;

  const int64_t written_before = selection.io_stats().bytes_written();

  // Swap in a workload that still uses the last-hidden feature (same
  // expression, same store key) plus a new second-last-hidden model.
  selection.UpdateWorkload(MakeWorkload(
      source,
      {zoo::BertFeature::kLastHidden, zoo::BertFeature::kSecondLastHidden},
      200));

  const int64_t written_after_swap = selection.io_stats().bytes_written();
  // Reconciliation wrote at most the new unit's backfill + checkpoints for
  // the new candidates, not a full re-materialization: bound it by 4x the
  // pre-swap traffic.
  EXPECT_LT(written_after_swap - written_before, 4 * written_before);

  // Further cycles run fine on the new workload.
  auto c2 = labeler.NextCycle();
  FitResult r2 = selection.Fit(c2.train, c2.valid);
  EXPECT_EQ(r2.evals.size(), 2u);
  EXPECT_GE(r2.best_model, 0);
  EXPECT_GE(r2.best_accuracy, 0.0f);
}

TEST_F(EvolvingWorkloadTest, SwapMatchesFreshSelectionResults) {
  // A selection whose workload is swapped to B after cycle 1 must produce
  // the same cycle-2 metrics as a fresh selection constructed with B that
  // sees both cycles (both retrain candidates from identical initialized
  // weights on identical snapshots).
  zoo::BertLikeModel source_a(zoo::BertConfig::TinyScale(), 12);
  zoo::BertLikeModel source_b(zoo::BertConfig::TinyScale(), 12);
  data::LabeledDataset pool = data::GenerateTextPool(source_a, 160, 3, 6);
  data::LabelingSimulator labeler_a(pool, 60, 0.75);
  data::LabelingSimulator labeler_b(pool, 60, 0.75);

  ModelSelectionOptions options;
  options.seed = 9;

  // Run 1: start with one model, swap to the two-model workload.
  ModelSelection evolving(
      MakeWorkload(source_a, {zoo::BertFeature::kLastHidden}, 100),
      LoadFriendlyConfig(), (dir_ / "a").string(), options);
  auto a1 = labeler_a.NextCycle();
  evolving.Fit(a1.train, a1.valid);
  evolving.UpdateWorkload(MakeWorkload(
      source_a,
      {zoo::BertFeature::kLastHidden, zoo::BertFeature::kSumLast4}, 300));
  auto a2 = labeler_a.NextCycle();
  FitResult evolved = evolving.Fit(a2.train, a2.valid);

  // Run 2: fresh selection with the final workload from the start.
  ModelSelection fresh(
      MakeWorkload(source_b,
                   {zoo::BertFeature::kLastHidden,
                    zoo::BertFeature::kSumLast4},
                   300),
      LoadFriendlyConfig(), (dir_ / "b").string(), options);
  auto b1 = labeler_b.NextCycle();
  fresh.Fit(b1.train, b1.valid);
  auto b2 = labeler_b.NextCycle();
  FitResult reference = fresh.Fit(b2.train, b2.valid);

  ASSERT_EQ(evolved.evals.size(), reference.evals.size());
  for (size_t m = 0; m < evolved.evals.size(); ++m) {
    EXPECT_NEAR(evolved.evals[m].val_accuracy,
                reference.evals[m].val_accuracy, 1e-5);
  }
}

TEST_F(EvolvingWorkloadTest, ObsoleteUnitsDropped) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 13);
  data::LabeledDataset pool = data::GenerateTextPool(source, 120, 3, 7);
  ModelSelection selection(
      MakeWorkload(source, {zoo::BertFeature::kLastHidden}, 100),
      LoadFriendlyConfig(), dir_.string(), {});
  data::LabelingSimulator labeler(pool, 60, 0.75);
  auto c1 = labeler.NextCycle();
  selection.Fit(c1.train, c1.valid);
  const int64_t bytes_with_features =
      static_cast<int64_t>(selection.io_stats().bytes_written());
  ASSERT_GT(bytes_with_features, 0);

  // Swap to a fine-tuning workload that unfreezes everything: nothing left
  // to materialize, the store must shrink to zero feature bytes.
  Workload all_tuned;
  Hyperparams hp;
  hp.batch_size = 10;
  hp.epochs = 1;
  all_tuned.emplace_back(
      zoo::BuildBertFineTuneModel(source, source.config().num_blocks, 3,
                                  "tuned", 400),
      hp);
  selection.UpdateWorkload(std::move(all_tuned));
  int chosen = 0;
  for (bool b : selection.materialization().materialize) chosen += b;
  EXPECT_EQ(chosen, 0);
  auto c2 = labeler.NextCycle();
  FitResult r = selection.Fit(c2.train, c2.valid);
  EXPECT_EQ(r.evals.size(), 1u);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
