#include <gtest/gtest.h>

#include "nautilus/core/profile.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace core {
namespace {

TEST(ProfileReportTest, ListsEveryLayerWithFlags) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 3);
  Candidate candidate(
      zoo::BuildBertFeatureTransferModel(source,
                                         zoo::BertFeature::kLastHidden, 3,
                                         "report_m", 9),
      Hyperparams{});
  SystemConfig config;
  const std::string report = ProfileReport(candidate, config);
  for (const auto& node : candidate.model.nodes()) {
    EXPECT_NE(report.find(node.layer->name().substr(0, 23)),
              std::string::npos)
        << "missing layer " << node.layer->name();
  }
  EXPECT_NE(report.find("materializable"), std::string::npos);
  EXPECT_NE(report.find("output"), std::string::npos);
  EXPECT_NE(report.find("total c_comp"), std::string::npos);
}

TEST(ProfileReportTest, AvoidableComputeMatchesEquation11Terms) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 4);
  Candidate candidate(
      zoo::BuildBertFeatureTransferModel(source,
                                         zoo::BertFeature::kSumLast4, 3,
                                         "report_m2", 10),
      Hyperparams{});
  SystemConfig config;
  ModelProfile profile = ProfileCandidate(candidate, config);
  EXPECT_GT(profile.TotalComputeCost(),
            profile.NonMaterializableComputeCost());
  EXPECT_GT(profile.NonMaterializableComputeCost(), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace nautilus
