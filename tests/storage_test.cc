#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nautilus/storage/checkpoint_store.h"
#include "nautilus/storage/io_stats.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/util/random.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nautilus_storage_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, PutGetRoundTrip) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Rng rng(1);
  Tensor t = Tensor::Randn(Shape({4, 3}), &rng, 1.0f);
  ASSERT_TRUE(store.Put("features", t).ok());
  auto loaded = store.Get("features");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shape(), t.shape());
  EXPECT_EQ(Tensor::MaxAbsDiff(*loaded, t), 0.0f);
}

TEST_F(StorageTest, GetMissingIsNotFound) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  auto result = store.Get("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, AppendRowsGrowsTensor) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor a(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b(Shape({1, 3}), {7, 8, 9});
  ASSERT_TRUE(store.AppendRows("f", a).ok());
  ASSERT_TRUE(store.AppendRows("f", b).ok());
  EXPECT_EQ(store.NumRows("f"), 3);
  auto loaded = store.Get("f");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(loaded->at(8), 9.0f);
}

TEST_F(StorageTest, AppendShapeMismatchRejected) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.AppendRows("f", Tensor(Shape({2, 3}))).ok());
  EXPECT_FALSE(store.AppendRows("f", Tensor(Shape({2, 4}))).ok());
  EXPECT_FALSE(store.AppendRows("f", Tensor(Shape({2, 3, 1}))).ok());
}

TEST_F(StorageTest, GetRowsReadsSlice) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor t(Shape({4, 2}), {0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(store.Put("f", t).ok());
  auto rows = store.GetRows("f", 1, 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(rows->at(0), 2.0f);
  EXPECT_FLOAT_EQ(rows->at(3), 5.0f);

  EXPECT_FALSE(store.GetRows("f", 2, 9).ok());
}

TEST_F(StorageTest, IoStatsCountBytes) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor t(Shape({10, 10}));
  ASSERT_TRUE(store.Put("f", t).ok());
  EXPECT_GE(stats.bytes_written(), t.SizeBytes());
  EXPECT_EQ(stats.bytes_read(), 0);
  ASSERT_TRUE(store.Get("f").ok());
  EXPECT_GE(stats.bytes_read(), t.SizeBytes());
  EXPECT_EQ(stats.num_reads(), 1);
  EXPECT_EQ(stats.num_writes(), 1);
  stats.Reset();
  EXPECT_EQ(stats.bytes_written(), 0);
}

TEST_F(StorageTest, RemoveAndClear) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("a", Tensor(Shape({2}))).ok());
  ASSERT_TRUE(store.Put("b", Tensor(Shape({2}))).ok());
  EXPECT_TRUE(store.Contains("a"));
  ASSERT_TRUE(store.Remove("a").ok());
  EXPECT_FALSE(store.Contains("a"));
  ASSERT_TRUE(store.Clear().ok());
  EXPECT_FALSE(store.Contains("b"));
  EXPECT_EQ(store.TotalBytes(), 0);
}

TEST_F(StorageTest, TotalBytesTracksBudgetAccounting) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("a", Tensor(Shape({100, 10}))).ok());
  // 1000 floats + header.
  EXPECT_GE(store.TotalBytes(), 4000);
  EXPECT_LE(store.TotalBytes(), 4200);
}

TEST_F(StorageTest, GetReturnsZeroCopyViewWithCopyOnWrite) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor t(Shape({2, 2}), {1, 2, 3, 4});
  ASSERT_TRUE(store.Put("f", t).ok());
  auto view = store.GetView("f");
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->IsView());
  EXPECT_EQ(Tensor::MaxAbsDiff(*view, t), 0.0f);
  // Mutation detaches the view without touching the stored bytes.
  view->Fill(9.0f);
  EXPECT_FALSE(view->IsView());
  auto reread = store.Get("f");
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(Tensor::MaxAbsDiff(*reread, t), 0.0f);
}

TEST_F(StorageTest, ViewOutlivesRemoveAndReplacingPut) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor t(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(store.Put("f", t).ok());
  auto view = store.Get("f");
  ASSERT_TRUE(view.ok());
  // The mapping pins the inode: unlinking and replacing the file must not
  // change the bytes an existing view sees.
  ASSERT_TRUE(store.Remove("f").ok());
  EXPECT_EQ(Tensor::MaxAbsDiff(*view, t), 0.0f);
  ASSERT_TRUE(store.Put("f", Tensor(Shape({3, 2}))).ok());
  EXPECT_EQ(Tensor::MaxAbsDiff(*view, t), 0.0f);
  auto fresh = store.Get("f");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FLOAT_EQ(fresh->at(0), 0.0f);
}

TEST_F(StorageTest, GetRowsViewSlicesWithoutCopy) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor t(Shape({4, 2}), {0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(store.Put("f", t).ok());
  auto rows = store.GetRowsView("f", 1, 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->IsView());
  EXPECT_EQ(rows->shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(rows->at(0), 2.0f);
  EXPECT_FLOAT_EQ(rows->at(3), 5.0f);
  EXPECT_FALSE(store.GetRowsView("f", 2, 9).ok());
}

TEST_F(StorageTest, GetBatchMatchesSerialReads) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Rng rng(7);
  Tensor a = Tensor::Randn(Shape({8, 3}), &rng, 1.0f);
  Tensor b = Tensor::Randn(Shape({5, 4}), &rng, 1.0f);
  ASSERT_TRUE(store.Put("a", a).ok());
  ASSERT_TRUE(store.Put("b", b).ok());
  auto batch = store.GetBatch({{"a", 0, -1}, {"b", 1, 4}, {"a", 0, -1}});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_EQ(Tensor::MaxAbsDiff((*batch)[0], a), 0.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff((*batch)[1], b.SliceRows(1, 4)), 0.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff((*batch)[2], a), 0.0f);
}

TEST_F(StorageTest, GetBatchReportsLowestIndexedError) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("a", Tensor(Shape({2, 2}))).ok());
  auto batch = store.GetBatch({{"a", 0, -1}, {"missing", 0, -1}});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, WarmReadsSkipDisk) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("f", Tensor(Shape({64, 8}))).ok());
  ASSERT_TRUE(store.Get("f").ok());
  const int64_t cold_bytes = stats.bytes_read();
  EXPECT_GT(cold_bytes, 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Get("f").ok());
  }
  EXPECT_EQ(stats.bytes_read(), cold_bytes);  // warm reads are memory-only
  EXPECT_EQ(store.cache_entry_count(), 1);
}

TEST_F(StorageTest, ListKeysRoundTripsRawKeys) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  const std::vector<std::string> raw = {
      "session.train.inputs", "unit_3.valid", "weird/key:with spaces",
      "unicode\xc3\xa9"};
  for (const std::string& key : raw) {
    ASSERT_TRUE(store.Put(key, Tensor(Shape({1}), {1.0f})).ok());
  }
  std::vector<std::string> expected = raw;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(store.ListKeys(), expected);
}

TEST_F(StorageTest, AppendAfterCachedReadReturnsGrownTensor) {
  IoStats stats;
  TensorStore store(dir_.string(), &stats);
  Tensor a(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(store.Put("f", a).ok());
  auto before = store.Get("f");  // populate the cache
  ASSERT_TRUE(before.ok());
  Tensor b(Shape({1, 3}), {7, 8, 9});
  ASSERT_TRUE(store.AppendRows("f", b).ok());
  auto after = store.Get("f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(after->at(8), 9.0f);
  // The stale view still sees the pre-append rows (append-only growth).
  EXPECT_EQ(Tensor::MaxAbsDiff(*before, a), 0.0f);
}

TEST_F(StorageTest, CheckpointSaveLoadRoundTrip) {
  IoStats stats;
  CheckpointStore store(dir_.string(), &stats);
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 5);
  graph::ModelGraph m = zoo::BuildBertFeatureTransferModel(
      source, zoo::BertFeature::kLastHidden, 3, "m", 7);

  ASSERT_TRUE(store.SaveModel(m, "ckpt", /*include_frozen=*/true).ok());

  // Perturb a trainable parameter, reload, and verify restoration.
  nn::Parameter* target = nullptr;
  for (const auto& node : m.nodes()) {
    if (!node.frozen && !node.layer->Params().empty()) {
      target = node.layer->Params()[0];
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  Tensor original = target->value;
  target->value.Fill(123.0f);
  ASSERT_TRUE(store.LoadModel(m, "ckpt").ok());
  EXPECT_EQ(Tensor::MaxAbsDiff(target->value, original), 0.0f);
}

TEST_F(StorageTest, PrunedCheckpointIsMuchSmaller) {
  // The Figure 11 effect: skipping frozen parameters shrinks checkpoints by
  // the frozen fraction of the model.
  IoStats stats;
  CheckpointStore store(dir_.string(), &stats);
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 6);
  graph::ModelGraph m = zoo::BuildBertFeatureTransferModel(
      source, zoo::BertFeature::kLastHidden, 3, "m", 8);
  ASSERT_TRUE(store.SaveModel(m, "full", true).ok());
  ASSERT_TRUE(store.SaveModel(m, "pruned", false).ok());
  EXPECT_LT(store.SizeBytes("pruned"), store.SizeBytes("full"));
  EXPECT_NEAR(static_cast<double>(store.SizeBytes("full")),
              CheckpointStore::EstimateBytes(m, true), 64.0);
  EXPECT_NEAR(static_cast<double>(store.SizeBytes("pruned")),
              CheckpointStore::EstimateBytes(m, false), 64.0);
}

TEST_F(StorageTest, EstimateBytesWorksOnStubs) {
  nn::ProfileOnlyScope profile_only;
  zoo::BertLikeModel source(zoo::BertConfig::PaperScale(), 7);
  graph::ModelGraph m = source.BuildSourceGraph();
  // BERT-base full checkpoint is ~440 MB of float32 weights.
  const double bytes = CheckpointStore::EstimateBytes(m, true);
  EXPECT_GT(bytes, 3.0e8);
  EXPECT_LT(bytes, 6.0e8);
}

}  // namespace
}  // namespace storage
}  // namespace nautilus
