#include <filesystem>

#include <gtest/gtest.h>

#include "nautilus/nn/layer.h"
#include "nautilus/workloads/definitions.h"
#include "nautilus/workloads/runner.h"

namespace nautilus {
namespace workloads {
namespace {

TEST(DefinitionsTest, Table3ModelCounts) {
  // Grid sizes must match Table 3 exactly.
  nn::ProfileOnlyScope profile_only;
  EXPECT_EQ(BuildWorkload(WorkloadId::kFtr1, Scale::kPaper, 1).workload.size(),
            36u);
  EXPECT_EQ(BuildWorkload(WorkloadId::kFtr2, Scale::kPaper, 1).workload.size(),
            24u);
  EXPECT_EQ(BuildWorkload(WorkloadId::kFtr3, Scale::kPaper, 1).workload.size(),
            12u);
  EXPECT_EQ(BuildWorkload(WorkloadId::kAtr, Scale::kPaper, 1).workload.size(),
            24u);
  EXPECT_EQ(BuildWorkload(WorkloadId::kFtu, Scale::kPaper, 1).workload.size(),
            24u);
}

TEST(DefinitionsTest, PaperEpochGrids) {
  nn::ProfileOnlyScope profile_only;
  auto ftr3 = BuildWorkload(WorkloadId::kFtr3, Scale::kPaper, 1);
  std::set<int64_t> epochs;
  for (const auto& candidate : ftr3.workload) {
    epochs.insert(candidate.hp.epochs);
  }
  EXPECT_EQ(epochs, (std::set<int64_t>{5, 10}));

  auto ftr1 = BuildWorkload(WorkloadId::kFtr1, Scale::kPaper, 1);
  for (const auto& candidate : ftr1.workload) {
    EXPECT_EQ(candidate.hp.epochs, 5);
  }
}

TEST(DefinitionsTest, AllModelsValidateAtMiniScale) {
  for (WorkloadId id : AllWorkloads()) {
    BuiltWorkload built = BuildWorkload(id, Scale::kMini, 3);
    for (const auto& candidate : built.workload) {
      candidate.model.Validate();
      EXPECT_GT(candidate.model.TrainableParamCount(), 0)
          << built.name << "/" << candidate.model.name();
    }
  }
}

TEST(DefinitionsTest, BatchAndLrGrid) {
  nn::ProfileOnlyScope profile_only;
  auto ftr2 = BuildWorkload(WorkloadId::kFtr2, Scale::kPaper, 1);
  std::set<int64_t> batches;
  std::set<double> lrs;
  for (const auto& candidate : ftr2.workload) {
    batches.insert(candidate.hp.batch_size);
    lrs.insert(candidate.hp.learning_rate);
  }
  EXPECT_EQ(batches, (std::set<int64_t>{16, 32}));
  EXPECT_EQ(lrs.size(), 3u);
}

TEST(RunnerTest, ApproachOptionsDifferentiate) {
  auto cp = ApproachOptions(Approach::kCurrentPractice);
  EXPECT_EQ(cp.materialization, core::MaterializationMode::kNone);
  EXPECT_FALSE(cp.fusion);
  EXPECT_TRUE(cp.full_checkpoints);
  auto nautilus = ApproachOptions(Approach::kNautilus);
  EXPECT_EQ(nautilus.materialization, core::MaterializationMode::kOptimized);
  EXPECT_TRUE(nautilus.fusion);
  EXPECT_FALSE(nautilus.full_checkpoints);
}

TEST(RunnerTest, SimulatedPaperScaleOrderings) {
  // The headline orderings of Figure 6(A) at paper scale, on FTR-2:
  // Nautilus < MAT-ALL < Current Practice, and Nautilus beats the others by
  // a solid factor.
  nn::ProfileOnlyScope profile_only;
  BuiltWorkload built = BuildWorkload(WorkloadId::kFtr2, Scale::kPaper, 7);
  core::SystemConfig config;
  config.expected_max_records = 5000;
  RunParams params;
  params.cycles = 3;  // keep the unit test quick

  SimulatedRun cp = SimulateRun(built, Approach::kCurrentPractice, config,
                                params);
  SimulatedRun mat_all = SimulateRun(built, Approach::kMatAll, config,
                                     params);
  SimulatedRun nautilus = SimulateRun(built, Approach::kNautilus, config,
                                      params);

  EXPECT_LT(nautilus.total_seconds, mat_all.total_seconds);
  EXPECT_LT(mat_all.total_seconds, cp.total_seconds);
  EXPECT_GT(cp.total_seconds / nautilus.total_seconds, 2.0);
  // Nautilus reads and writes less than MAT-ALL.
  EXPECT_LT(nautilus.bytes_read, mat_all.bytes_read);
  // Fewer groups than models under fusion.
  EXPECT_LT(nautilus.num_groups,
            static_cast<int>(built.workload.size()));
  EXPECT_GT(nautilus.num_materialized_units, 0);
  EXPECT_LE(nautilus.storage_bytes, config.disk_budget_bytes);
}

TEST(RunnerTest, SimulatedAblationBothHelp) {
  nn::ProfileOnlyScope profile_only;
  BuiltWorkload built = BuildWorkload(WorkloadId::kFtr2, Scale::kPaper, 7);
  core::SystemConfig config;
  config.expected_max_records = 5000;
  RunParams params;
  params.cycles = 2;

  const double full =
      SimulateRun(built, Approach::kNautilus, config, params).total_seconds;
  const double no_fuse =
      SimulateRun(built, Approach::kMatOnly, config, params).total_seconds;
  const double no_mat =
      SimulateRun(built, Approach::kFuseOnly, config, params).total_seconds;
  const double cp = SimulateRun(built, Approach::kCurrentPractice, config,
                                params)
                        .total_seconds;
  EXPECT_LE(full, no_fuse + 1e-6);
  EXPECT_LE(full, no_mat + 1e-6);
  EXPECT_LT(no_fuse, cp);
  EXPECT_LT(no_mat, cp);
}

TEST(RunnerTest, MeasuredMiniRunExecutes) {
  BuiltWorkload built = BuildWorkload(WorkloadId::kFtr3, Scale::kMini, 11);
  // Shrink to a fast smoke test: a few candidates, 2 cycles.
  built.workload.erase(built.workload.begin() + 4, built.workload.end());
  core::SystemConfig config;
  config.expected_max_records = 200;
  config.flops_per_second = 1e9;
  RunParams params;
  params.cycles = 2;
  params.records_per_cycle = 60;
  params.train_fraction = 0.75;

  data::LabeledDataset pool = MakePoolFor(built, 150, 5);
  const auto dir = std::filesystem::temp_directory_path() /
                   "nautilus_runner_test";
  std::filesystem::remove_all(dir);
  MeasuredRun run = MeasureRun(built, Approach::kNautilus, config, params,
                               pool, dir.string());
  std::filesystem::remove_all(dir);
  ASSERT_EQ(run.cycles.size(), 2u);
  EXPECT_GT(run.cycles[1].cumulative_seconds,
            run.cycles[0].cumulative_seconds);
  EXPECT_GE(run.cycles[1].best_accuracy, 0.0f);
  EXPECT_GT(run.bytes_written, 0);
}

}  // namespace
}  // namespace workloads
}  // namespace nautilus
