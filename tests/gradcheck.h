#ifndef NAUTILUS_TESTS_GRADCHECK_H_
#define NAUTILUS_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nautilus/tensor/tensor.h"

namespace nautilus {
namespace testing_util {

/// Verifies `analytic_grad` against a central-difference numerical gradient
/// of the scalar function `f` with respect to `x`. Tolerances are loose
/// because everything is float32.
inline void ExpectGradientsClose(
    const std::function<double(const Tensor&)>& f, const Tensor& x,
    const Tensor& analytic_grad, double eps = 1e-2, double atol = 2e-2,
    double rtol = 5e-2) {
  ASSERT_EQ(x.NumElements(), analytic_grad.NumElements());
  Tensor probe = x;
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    const float orig = probe.at(i);
    probe.at(i) = orig + static_cast<float>(eps);
    const double fp = f(probe);
    probe.at(i) = orig - static_cast<float>(eps);
    const double fm = f(probe);
    probe.at(i) = orig;
    const double numeric = (fp - fm) / (2.0 * eps);
    const double analytic = analytic_grad.at(i);
    const double tol = atol + rtol * std::max(std::fabs(numeric),
                                              std::fabs(analytic));
    EXPECT_NEAR(analytic, numeric, tol)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace testing_util
}  // namespace nautilus

#endif  // NAUTILUS_TESTS_GRADCHECK_H_
