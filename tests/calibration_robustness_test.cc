// Hardware calibration, DOT export, and storage fault-handling tests.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "nautilus/core/calibration.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace {

TEST(CalibrationTest, MeasuresPositiveThroughputs) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_calibration";
  std::filesystem::remove_all(dir);
  core::CalibrationResult result =
      core::MeasureHardware(dir.string(), /*probe_seconds=*/0.05);
  // Any real machine computes at least 10 MFLOP/s and moves 1 MB/s.
  EXPECT_GT(result.flops_per_second, 1e7);
  EXPECT_LT(result.flops_per_second, 1e15);
  EXPECT_GT(result.disk_write_bytes_per_second, 1e6);
  EXPECT_GT(result.disk_read_bytes_per_second, 1e6);
  std::filesystem::remove_all(dir);
}

TEST(CalibrationTest, CalibrateConfigOverridesThroughputFields) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_calibration2";
  std::filesystem::remove_all(dir);
  core::SystemConfig base;
  base.disk_budget_bytes = 123.0;
  core::SystemConfig tuned =
      core::CalibrateConfig(base, dir.string(), 0.05);
  EXPECT_GT(tuned.flops_per_second, 0.0);
  EXPECT_GT(tuned.disk_bytes_per_second, 0.0);
  EXPECT_DOUBLE_EQ(tuned.disk_budget_bytes, 123.0);  // budgets untouched
  std::filesystem::remove_all(dir);
}

TEST(DotExportTest, ContainsEveryNodeAndEdge) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 1);
  graph::ModelGraph m = zoo::BuildBertFeatureTransferModel(
      source, zoo::BertFeature::kSumLast4, 3, "dot_m", 5);
  const std::string dot = m.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const auto& node : m.nodes()) {
    EXPECT_NE(dot.find("n" + std::to_string(node.id) + " [label="),
              std::string::npos)
        << "missing node " << node.id;
  }
  // Frozen nodes render grey, trainable ones yellow.
  EXPECT_NE(dot.find("lightgrey"), std::string::npos);
  EXPECT_NE(dot.find("lightyellow"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "nautilus_store_fault";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(StoreFaultTest, BadMagicRejected) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("t", Tensor(Shape({2, 2}))).ok());
  // Corrupt the magic number.
  {
    std::fstream f(dir_ / "t.tns",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const char junk[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    f.write(junk, 8);
  }
  auto result = store.Get("t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(StoreFaultTest, TruncatedDataRejected) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("t", Tensor(Shape({64, 64}))).ok());
  std::filesystem::resize_file(dir_ / "t.tns", 64);
  auto result = store.Get("t");
  EXPECT_FALSE(result.ok());
}

TEST_F(StoreFaultTest, AbsurdRankRejected) {
  // Hand-craft a header with rank 99.
  {
    std::ofstream f(dir_ / "t.tns", std::ios::binary);
    const int64_t magic = 0x4e41555431000001;
    const int64_t rank = 99;
    f.write(reinterpret_cast<const char*>(&magic), 8);
    f.write(reinterpret_cast<const char*>(&rank), 8);
  }
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  auto result = store.Get("t");
  EXPECT_FALSE(result.ok());
}

TEST_F(StoreFaultTest, KeySanitizationKeepsKeysDistinctFiles) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("a/b", Tensor(Shape({1}), {1.0f})).ok());
  ASSERT_TRUE(store.Put("a:b", Tensor(Shape({1}), {2.0f})).ok());
  // Both sanitize to a_b: last write wins on the same file; the store must
  // at least not crash and must return the latest value.
  auto v = store.Get("a/b");
  ASSERT_TRUE(v.ok());
  EXPECT_FLOAT_EQ(v->at(0), 2.0f);
}

}  // namespace
}  // namespace nautilus
