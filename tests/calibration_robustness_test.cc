// Hardware calibration, DOT export, and storage fault-handling tests.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "nautilus/core/calibration.h"
#include "nautilus/storage/tensor_store.h"
#include "nautilus/zoo/bert_like.h"

namespace nautilus {
namespace {

TEST(CalibrationTest, MeasuresPositiveThroughputs) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_calibration";
  std::filesystem::remove_all(dir);
  core::CalibrationResult result =
      core::MeasureHardware(dir.string(), /*probe_seconds=*/0.05);
  // Any real machine computes at least 10 MFLOP/s and moves 1 MB/s.
  EXPECT_GT(result.flops_per_second, 1e7);
  EXPECT_LT(result.flops_per_second, 1e15);
  EXPECT_GT(result.disk_write_bytes_per_second, 1e6);
  EXPECT_GT(result.disk_read_bytes_per_second, 1e6);
  std::filesystem::remove_all(dir);
}

TEST(CalibrationTest, CalibrateConfigOverridesThroughputFields) {
  const auto dir =
      std::filesystem::temp_directory_path() / "nautilus_calibration2";
  std::filesystem::remove_all(dir);
  core::SystemConfig base;
  base.disk_budget_bytes = 123.0;
  core::SystemConfig tuned =
      core::CalibrateConfig(base, dir.string(), 0.05);
  EXPECT_GT(tuned.flops_per_second, 0.0);
  EXPECT_GT(tuned.disk_bytes_per_second, 0.0);
  EXPECT_DOUBLE_EQ(tuned.disk_budget_bytes, 123.0);  // budgets untouched
  std::filesystem::remove_all(dir);
}

TEST(DotExportTest, ContainsEveryNodeAndEdge) {
  zoo::BertLikeModel source(zoo::BertConfig::TinyScale(), 1);
  graph::ModelGraph m = zoo::BuildBertFeatureTransferModel(
      source, zoo::BertFeature::kSumLast4, 3, "dot_m", 5);
  const std::string dot = m.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const auto& node : m.nodes()) {
    EXPECT_NE(dot.find("n" + std::to_string(node.id) + " [label="),
              std::string::npos)
        << "missing node " << node.id;
  }
  // Frozen nodes render grey, trainable ones yellow.
  EXPECT_NE(dot.find("lightgrey"), std::string::npos);
  EXPECT_NE(dot.find("lightyellow"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "nautilus_store_fault";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Filenames embed a key hash, so fault injection locates the single file
  // the store just wrote instead of hardcoding a name.
  std::filesystem::path SoleTnsFile() const {
    std::filesystem::path found;
    int count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().extension() == ".tns") {
        found = entry.path();
        ++count;
      }
    }
    EXPECT_EQ(count, 1);
    return found;
  }

  std::filesystem::path dir_;
};

TEST_F(StoreFaultTest, BadMagicRejected) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("t", Tensor(Shape({2, 2}))).ok());
  // Corrupt the magic number.
  {
    std::fstream f(SoleTnsFile(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const char junk[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    f.write(junk, 8);
  }
  auto result = store.Get("t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(StoreFaultTest, TruncatedDataRejected) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("t", Tensor(Shape({64, 64}))).ok());
  std::filesystem::resize_file(SoleTnsFile(), 64);
  auto result = store.Get("t");
  EXPECT_FALSE(result.ok());
}

TEST_F(StoreFaultTest, AbsurdRankRejected) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("t", Tensor(Shape({2, 2}))).ok());
  // Overwrite the stored file with a header claiming rank 99.
  {
    std::ofstream f(SoleTnsFile(), std::ios::binary);
    const int64_t magic = 0x4e41555431000001;
    const int64_t rank = 99;
    f.write(reinterpret_cast<const char*>(&magic), 8);
    f.write(reinterpret_cast<const char*>(&rank), 8);
  }
  auto result = store.Get("t");
  EXPECT_FALSE(result.ok());
}

TEST_F(StoreFaultTest, KeySanitizationKeepsKeysDistinctFiles) {
  storage::IoStats stats;
  storage::TensorStore store(dir_.string(), &stats);
  ASSERT_TRUE(store.Put("a/b", Tensor(Shape({1}), {1.0f})).ok());
  ASSERT_TRUE(store.Put("a:b", Tensor(Shape({1}), {2.0f})).ok());
  ASSERT_TRUE(store.Put("a_b", Tensor(Shape({1}), {3.0f})).ok());
  // Every key maps to its own file (the filename carries a key hash), so
  // keys that flatten to the same safe name stay distinct.
  auto v1 = store.Get("a/b");
  auto v2 = store.Get("a:b");
  auto v3 = store.Get("a_b");
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(v3.ok());
  EXPECT_FLOAT_EQ(v1->at(0), 1.0f);
  EXPECT_FLOAT_EQ(v2->at(0), 2.0f);
  EXPECT_FLOAT_EQ(v3->at(0), 3.0f);
  // And ListKeys round-trips the raw keys.
  const std::vector<std::string> keys = store.ListKeys();
  EXPECT_EQ(keys, (std::vector<std::string>{"a/b", "a:b", "a_b"}));
}

}  // namespace
}  // namespace nautilus
